//===- Main.cpp - The futharkcc command-line compiler ------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line driver: compiles a source file through the pipeline of
/// Fig 3, optionally dumping the IR after each phase, and optionally
/// running the entry point on the reference interpreter or the simulated
/// GPU with arguments given on the command line.
///
///   futharkcc prog.fut                      # compile, report statistics
///   futharkcc prog.fut --dump-ir            # print the final IR
///   futharkcc prog.fut --run 4 "[1,2,3,4]"  # run main on the device
///   futharkcc prog.fut --interp --run ...   # run on the interpreter
///   futharkcc prog.fut --no-fusion --no-coalescing --no-tiling ...
///   futharkcc prog.fut --device w8100 --run ...
///
/// Array arguments use the literal syntax [v1,v2,...]; element kind is
/// inferred from the first element (i32 by default, f32 with a decimal
/// point).
///
//===----------------------------------------------------------------------===//

#include "ad/Vjp.h"
#include "driver/Compiler.h"
#include "gpusim/CostModel.h"
#include "gpusim/Device.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "parser/Desugar.h"
#include "trace/Trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace fut;

namespace {

void usage() {
  fprintf(stderr,
          "usage: futharkcc <file.fut> [options] [--run args...]\n"
          "  --dump-ir          print the compiled IR\n"
          "  --interp           run on the reference interpreter\n"
          "  --device <name>    gtx780 (default) or w8100\n"
          "  --cost-model <m>   kernel cycle model: roofline (closed-form\n"
          "                     default) or pipeline (warp-scheduler\n"
          "                     occupancy, divergence serialisation,\n"
          "                     coalescer queue, bank conflicts); outputs\n"
          "                     and transaction counters are identical\n"
          "                     under either model\n"
          "  --no-fusion        disable the fusion engine\n"
          "  --no-coalescing    disable the coalescing transformation\n"
          "  --no-tiling        disable block tiling\n"
          "  --no-interchange   disable map-loop interchange (G7)\n"
          "  --verify-ir        re-derive and check IR types after every\n"
          "                     pass (default; --no-verify-ir disables)\n"
          "  --no-mem-plan      skip the static memory planner; the\n"
          "                     runtime buffer manager decides every device\n"
          "                     allocation dynamically (ablation)\n"
          "  --print-mem-plan   dump the static memory plan (slab layout,\n"
          "                     aliases, live ranges) after compilation\n"
          "  --vjp <f>          differentiate <f> (reverse-mode AD): adds\n"
          "                     <f>_vjp returning the primal results plus\n"
          "                     the adjoint of every float parameter; --run\n"
          "                     then executes <f>_vjp (primal args followed\n"
          "                     by one seed per float result)\n"
          "  --devices <n>      shard kernels across <n> simulated devices\n"
          "                     (default 1: single-device, bit-identical to\n"
          "                     the pre-sharding model)\n"
          "  --print-shard-plan dump the multi-device shard plan (block\n"
          "                     ownership, input classes, transfer edges)\n"
          "  --device-mem <b>   device memory capacity in bytes (0 = "
          "unlimited)\n"
          "  --watchdog <c>     kill any kernel over <c> simulated cycles\n"
          "  --watchdog-total <c>  kill the run over <c> simulated cycles\n"
          "  --fault-rate <p>   inject transient launch failures with "
          "probability p\n"
          "  --corrupt-rate <p> inject detected result corruption with "
          "probability p\n"
          "  --fault-seed <n>   seed of the deterministic fault stream\n"
          "  --max-retries <n>  transient-fault retries per kernel "
          "(default 3)\n"
          "  --no-fallback      fail instead of degrading to the "
          "interpreter\n"
          "  --sync             serial cost model ablation: charge every\n"
          "                     command as if the device had one blocking\n"
          "                     queue (disables copy/compute overlap)\n"
          "  --trace            print a span/counter summary to stderr\n"
          "  --trace-out <file> write a Chrome trace_event JSON file\n"
          "                     (load in chrome://tracing or Perfetto);\n"
          "                     a parameterless main is run automatically\n"
          "  --run v1 v2 ...    run main on the given arguments\n"
          "arguments: scalars (3, 2.5, true) or arrays ([1,2,3], "
          "[1.5,2.5])\n");
}

/// Parses a command-line value: a scalar or a [..] literal.
ErrorOr<Value> parseValue(const std::string &S) {
  auto ParseScalar = [](const std::string &T) -> ErrorOr<PrimValue> {
    if (T == "true")
      return PrimValue::makeBool(true);
    if (T == "false")
      return PrimValue::makeBool(false);
    try {
      if (T.find('.') != std::string::npos ||
          T.find('e') != std::string::npos)
        return PrimValue::makeF32(std::stof(T));
      return PrimValue::makeI32(static_cast<int32_t>(std::stol(T)));
    } catch (...) {
      return CompilerError("cannot parse value '" + T + "'");
    }
  };

  if (S.empty())
    return CompilerError("empty argument");
  if (S.front() != '[') {
    auto P = ParseScalar(S);
    if (!P)
      return P.getError();
    return Value::scalar(*P);
  }
  if (S.back() != ']')
    return CompilerError("unterminated array literal");
  std::vector<PrimValue> Elems;
  std::string Inner = S.substr(1, S.size() - 2);
  std::stringstream SS(Inner);
  std::string Tok;
  while (std::getline(SS, Tok, ',')) {
    // Trim whitespace.
    size_t B = Tok.find_first_not_of(" \t");
    size_t E = Tok.find_last_not_of(" \t");
    if (B == std::string::npos)
      continue;
    auto P = ParseScalar(Tok.substr(B, E - B + 1));
    if (!P)
      return P.getError();
    Elems.push_back(*P);
  }
  if (Elems.empty())
    return CompilerError("empty array literals need a kind; not supported");
  ScalarKind Kind = Elems[0].kind();
  int64_t N = static_cast<int64_t>(Elems.size());
  for (const PrimValue &E : Elems)
    if (E.kind() != Kind)
      return CompilerError("mixed element kinds in array literal");
  return Value::array(Kind, {N}, std::move(Elems));
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 2;
  }

  std::string File;
  bool DumpIR = false, UseInterp = false, Run = false;
  bool PrintMemPlan = false;
  bool PrintShardPlan = false;
  bool TraceSummary = false;
  std::string TraceOut;
  CompilerOptions Opts;
  gpusim::DeviceParams DP = gpusim::DeviceParams::gtx780();
  gpusim::ResilienceParams RP;
  std::vector<std::string> RunArgs;

  // Flags taking a numeric argument share parsing; returns false (after
  // printing usage) when the argument is missing or malformed.
  auto NumArg = [&](int &I, double &Out) {
    if (++I >= argc)
      return false;
    try {
      Out = std::stod(argv[I]);
    } catch (...) {
      return false;
    }
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    double N = 0;
    if (Run) {
      RunArgs.push_back(A);
    } else if (A == "--dump-ir") {
      DumpIR = true;
    } else if (A == "--interp") {
      UseInterp = true;
    } else if (A == "--no-fusion") {
      Opts.EnableFusion = false;
    } else if (A == "--no-coalescing") {
      Opts.Locality.EnableCoalescing = false;
    } else if (A == "--no-tiling") {
      Opts.Locality.EnableTiling = false;
    } else if (A == "--no-interchange") {
      Opts.Flatten.EnableInterchange = false;
    } else if (A == "--verify-ir") {
      Opts.VerifyIR = true;
    } else if (A == "--no-verify-ir") {
      Opts.VerifyIR = false;
    } else if (A == "--no-mem-plan") {
      Opts.PlanMemory = false;
      DP.UseMemPlan = false;
    } else if (A == "--print-mem-plan") {
      PrintMemPlan = true;
    } else if (A == "--print-shard-plan") {
      PrintShardPlan = true;
    } else if (A == "--vjp") {
      if (++I >= argc) {
        usage();
        return 2;
      }
      Opts.VJP = argv[I];
    } else if (A.rfind("--vjp=", 0) == 0) {
      Opts.VJP = A.substr(strlen("--vjp="));
      if (Opts.VJP.empty()) {
        usage();
        return 2;
      }
    } else if (A == "--devices") {
      if (!NumArg(I, N) || N < 1) {
        usage();
        return 2;
      }
      Opts.Devices = static_cast<int>(N);
    } else if (A.rfind("--devices=", 0) == 0) {
      try {
        Opts.Devices = std::stoi(A.substr(strlen("--devices=")));
      } catch (...) {
        usage();
        return 2;
      }
      if (Opts.Devices < 1) {
        usage();
        return 2;
      }
    } else if (A == "--device") {
      if (++I >= argc) {
        usage();
        return 2;
      }
      std::string Name = argv[I];
      if (Name == "w8100")
        DP = gpusim::DeviceParams::w8100();
      else if (Name != "gtx780") {
        fprintf(stderr, "unknown device '%s'\n", Name.c_str());
        return 2;
      }
    } else if (A == "--cost-model" || A.rfind("--cost-model=", 0) == 0) {
      std::string Name;
      if (A == "--cost-model") {
        if (++I >= argc) {
          usage();
          return 2;
        }
        Name = argv[I];
      } else {
        Name = A.substr(strlen("--cost-model="));
      }
      if (!gpusim::CostModel::byName(Name)) {
        fprintf(stderr, "unknown cost model '%s'\n", Name.c_str());
        return 2;
      }
      DP.CostModelName = Name;
    } else if (A == "--device-mem") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      DP.DeviceMemBytes = static_cast<int64_t>(N);
    } else if (A == "--watchdog") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      DP.WatchdogKernelCycles = N;
    } else if (A == "--watchdog-total") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      DP.WatchdogTotalCycles = N;
    } else if (A == "--fault-rate") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      RP.Faults.LaunchFailRate = N;
    } else if (A == "--corrupt-rate") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      RP.Faults.CorruptRate = N;
    } else if (A == "--fault-seed") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      RP.Faults.Seed = static_cast<uint64_t>(N);
    } else if (A == "--max-retries") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      RP.MaxRetries = static_cast<int>(N);
    } else if (A == "--no-fallback") {
      RP.InterpFallback = false;
    } else if (A == "--sync") {
      DP.AsyncTimeline = false;
    } else if (A == "--trace") {
      TraceSummary = true;
    } else if (A == "--trace-out") {
      if (++I >= argc) {
        usage();
        return 2;
      }
      TraceOut = argv[I];
    } else if (A.rfind("--trace-out=", 0) == 0) {
      TraceOut = A.substr(strlen("--trace-out="));
    } else if (A == "--run") {
      Run = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      fprintf(stderr, "unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    } else {
      File = A;
    }
  }
  if (File.empty()) {
    usage();
    return 2;
  }

  std::ifstream In(File);
  if (!In) {
    fprintf(stderr, "error: cannot open %s\n", File.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  bool Tracing = TraceSummary || !TraceOut.empty();
  if (Tracing) {
    trace::TraceSession::global().clear();
    trace::TraceSession::global().setEnabled(true);
  }

  // Emit whatever was traced even on early exits, so a failed run still
  // produces an inspectable trace.
  auto ExportTrace = [&]() -> int {
    if (!Tracing)
      return 0;
    if (TraceSummary)
      fprintf(stderr, "%s", trace::TraceSession::global().summary().c_str());
    if (!TraceOut.empty()) {
      if (auto Err = trace::TraceSession::global().writeChromeTrace(TraceOut)) {
        fprintf(stderr, "trace error: %s\n",
                Err.getError().Message.c_str());
        return 1;
      }
      fprintf(stderr, "trace written to %s\n", TraceOut.c_str());
    }
    return 0;
  };

  NameSource Names;
  auto C = compileSource(Source, Names, Opts);
  if (!C) {
    ExportTrace();
    fprintf(stderr, "%s: %s\n", File.c_str(),
            C.getError().str().c_str());
    return 1;
  }

  fprintf(stderr,
          "%s: %d vertical + %d redomap + %d stream + %d horizontal + %d "
          "hist fusions; %d kernels (%d seg-reduce, %d seg-scan, %d "
          "seg-hist), %d interchanges, %d sequentialised SOACs; %d "
          "coalesced, %d tiled inputs\n",
          File.c_str(), C->Fusion.Vertical, C->Fusion.Redomap,
          C->Fusion.StreamFusions, C->Fusion.Horizontal,
          C->Fusion.HistFusions, C->Flatten.kernels(),
          C->Flatten.SegReduces, C->Flatten.SegScans, C->Flatten.SegHists,
          C->Flatten.Interchanges, C->Flatten.SequentialisedSOACs,
          C->Locality.CoalescedInputs, C->Locality.TiledInputs);

  if (DumpIR)
    printf("%s\n", printProgram(C->P).c_str());
  if (PrintMemPlan)
    printf("%s", C->MemPlan.str().c_str());
  if (PrintShardPlan)
    printf("%s", C->Shards.str().c_str());

  // With tracing requested but no --run, a parameterless entry point is
  // run automatically so the trace includes kernel launches.  Under --vjp
  // the entry point is the generated gradient function.
  const std::string Entry =
      Opts.VJP.empty() ? std::string("main") : ad::vjpName(Opts.VJP);
  const FunDef *Main = C->P.findFun(Entry);
  bool AutoRun = Tracing && !Run && !UseInterp && Main &&
                 Main->Params.empty();
  if (RunArgs.empty() && !AutoRun && !(Run && Main && Main->Params.empty()))
    return ExportTrace();

  std::vector<Value> Args;
  for (const std::string &S : RunArgs) {
    auto V = parseValue(S);
    if (!V) {
      fprintf(stderr, "argument error: %s\n", V.getError().Message.c_str());
      ExportTrace();
      return 1;
    }
    Args.push_back(std::move(*V));
  }

  std::vector<Value> Outputs;
  if (UseInterp) {
    InterpOptions IO;
    IO.ConsumeOnUpdate = true;
    Interpreter I(C->P, IO);
    auto R = I.runFunction(Entry, Args);
    if (!R) {
      fprintf(stderr, "runtime error: %s\n", R.getError().str().c_str());
      ExportTrace();
      return 1;
    }
    Outputs = R.take();
  } else {
    DeviceRunOptions RO;
    RO.Device = DP;
    RO.Resilience = RP;
    if (Opts.PlanMemory)
      RO.MemPlan = &C->MemPlan;
    if (Opts.Devices > 1) {
      RO.Shards = &C->Shards;
      RO.Devices = Opts.Devices;
    }
    auto R = runOnDevice(C->P, Args, RO, Entry);
    if (!R) {
      fprintf(stderr, "%s\n", R.getError().str().c_str());
      ExportTrace();
      return 1;
    }
    if (R->InterpFallback)
      fprintf(stderr,
              "device [%s]: persistent failure (%s); completed on the "
              "reference interpreter\n",
              DP.Name.c_str(), R->FallbackError.str().c_str());
    Outputs = std::move(R->Outputs);
    fprintf(stderr, "device [%s]: %s\n", DP.Name.c_str(),
            R->Cost.str().c_str());
  }
  for (const Value &V : Outputs)
    printf("%s\n", V.str().c_str());
  return ExportTrace();
}
