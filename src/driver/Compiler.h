//===- Compiler.h - The full pipeline of Fig 3 ------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler driver: parse -> desugar/typecheck -> uniqueness check ->
/// inline -> simplify -> fuse -> simplify -> kernel extraction ->
/// simplify -> locality optimisation (Fig 3's architecture).  Each phase
/// can be disabled individually, which is how the Section 6.1.1 ablation
/// benchmarks measure the impact of fusion, coalescing and tiling.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_DRIVER_COMPILER_H
#define FUTHARKCC_DRIVER_COMPILER_H

#include "flatten/Flatten.h"
#include "fusion/Fusion.h"
#include "gpusim/Device.h"
#include "ir/IR.h"
#include "locality/Locality.h"
#include "mem/MemPlan.h"
#include "opt/Simplify.h"
#include "shard/ShardPlan.h"
#include "support/Error.h"

#include <functional>
#include <string>

namespace fut {

struct CompilerOptions {
  bool CheckUniqueness = true;
  bool Inline = true;
  bool EnableFusion = true;
  bool ExtractKernels = true;
  /// Re-run the IR consistency checker after every phase (cheap; catches
  /// pass bugs before they reach the simulator).
  bool InternalChecks = true;
  /// Run the type-rederiving IR verifier (check/Verify.h) after every
  /// pass; violations abort compilation with an ErrorKind::Verify
  /// diagnostic naming the pass and the offending binding.  The --verify-ir
  /// flag; on by default so tests and CI always compile under it.
  bool VerifyIR = true;

  /// Run the static memory planner after locality and verify the plan
  /// (flattened pipelines only).  Off under --no-mem-plan, where the
  /// runtime buffer manager decides every allocation dynamically.
  bool PlanMemory = true;

  /// Number of simulated devices the program will be sharded across (the
  /// --devices flag).  The shard plan is always computed for flattened
  /// pipelines (so it can be printed and verified), but only a value > 1
  /// changes the artifact: N=1 sharding is a pinned no-op.
  int Devices = 1;

  /// Name of a function to differentiate (the --vjp flag).  When
  /// non-empty, a function-transform stage runs after inlining: reverse-mode
  /// AD adds `<VJP>_vjp` (primal results followed by the adjoint of every
  /// active parameter) to the program, and the generated adjoint code flows
  /// through the normal simplify/fuse/flatten/memplan/shard pipeline and
  /// every per-pass verifier unchanged.  Empty (the default) is a pinned
  /// no-op that keeps existing cache keys and golden hashes byte-identical.
  std::string VJP;

  /// Test-only hook run after each pass rewrites the program and before
  /// the verifier sees it; used to inject a deliberately broken rewrite
  /// and assert the verifier catches it at the right pass boundary.
  std::function<void(Program &, const std::string &Pass)> PostPassHook;

  /// The memory-plan analogue of PostPassHook: runs on the freshly
  /// computed plan before the plan verifier, so tests can inject a
  /// deliberately overlapping layout and assert it is rejected.
  std::function<void(mem::MemoryPlan &)> PostPlanHook;

  /// The shard-plan analogue of PostPlanHook: runs on the freshly computed
  /// shard plan before the shard verifier, so tests can plant overlapping
  /// ownership, dropped boundary transfers or over-budget shards and
  /// assert each is rejected with a named diagnostic.
  std::function<void(shard::ShardPlan &)> PostShardPlanHook;

  SimplifyOptions Simplify;
  FlattenOptions Flatten;
  LocalityOptions Locality;

  /// Stable textual dump of every option that changes the compiled
  /// artifact (test hooks and verification toggles are excluded: they
  /// affect *whether* compilation succeeds, never what it produces).
  /// Feeds the artifact cache key, so two requests differing in any
  /// semantically relevant flag never share an artifact.
  std::string cacheCanonical() const;
};

/// The device-executable half of a compiled artifact: the fully lowered
/// (flattened, fused, locality-optimised) program the simulator runs.
/// Structurally it *is* a Program — every existing consumer keeps working —
/// but it additionally carries the canonical dump used for content
/// addressing: str() is deterministic (the pipeline and the name source are
/// pure functions of the input), pinned by a golden-hash test so cache keys
/// cannot silently drift when a pass changes.
struct DeviceProgram : Program {
  DeviceProgram() = default;
  DeviceProgram(Program P) : Program(std::move(P)) {}

  /// Canonical textual form (the IR printer's output; stable order, tagged
  /// names, no pointers).
  std::string str() const;
};

struct CompileResult {
  DeviceProgram P;
  FusionStats Fusion;
  FlattenStats Flatten;
  LocalityStats Locality;
  /// The static device-memory plan ("pass:memplan"), verified against the
  /// program; empty when planning was disabled or kernels not extracted.
  mem::MemoryPlan MemPlan;
  /// The multi-device shard plan ("pass:shardplan"), verified against the
  /// program; empty when kernels were not extracted.  Computed even at
  /// Devices=1 so it can be printed and golden-tested, but it only enters
  /// the fingerprint when Devices > 1.
  shard::ShardPlan Shards;

  /// Content hash of the whole artifact: the canonical program dump, the
  /// memory-plan dump and the cost metadata (pass statistics).  Recompiling
  /// the same source with the same options always reproduces the same
  /// fingerprint — the property the serving layer's artifact cache and the
  /// quarantine recompile path rely on.
  uint64_t fingerprint() const;
};

/// The artifact-cache key: a content hash of the source text plus the
/// canonical compiler options.  Computable without compiling, which is what
/// makes compile-once/serve-many cheap on the hit path.
uint64_t artifactCacheKey(const std::string &Source,
                          const CompilerOptions &Opts);

/// Compiles surface source through the full pipeline.
ErrorOr<CompileResult> compileSource(const std::string &Source,
                                     NameSource &Names,
                                     const CompilerOptions &Opts = {});

/// Runs the middle- and back-end phases on an already-desugared program.
ErrorOr<CompileResult> compileProgram(Program P, NameSource &Names,
                                      const CompilerOptions &Opts = {});

/// How a compiled program is executed: the simulated device's hardware
/// parameters (capacity, throughputs, watchdog budgets) plus the host
/// runtime's resilience policy (fault plan, retries, interpreter
/// fallback).  The driver's --device-mem/--watchdog/--fault-rate/
/// --fault-seed/--max-retries flags populate this.
struct DeviceRunOptions {
  gpusim::DeviceParams Device = gpusim::DeviceParams::gtx780();
  gpusim::ResilienceParams Resilience;
  /// Compile-time memory plan to execute (must outlive the run).  Null
  /// lets the device plan the program itself when its parameters enable
  /// plan execution.
  const mem::MemoryPlan *MemPlan = nullptr;
  /// Compile-time shard plan plus the simulated device count; with
  /// Devices <= 1 (or no plan) execution is single-device and
  /// bit-identical to the pre-sharding model.
  const shard::ShardPlan *Shards = nullptr;
  int Devices = 1;
};

/// Runs a compiled program's entry point under the resilient host runtime.
ErrorOr<gpusim::RunResult> runOnDevice(const Program &P,
                                       const std::vector<Value> &Args,
                                       const DeviceRunOptions &Opts = {},
                                       const std::string &Fun = "main");

} // namespace fut

#endif // FUTHARKCC_DRIVER_COMPILER_H
