//===- Flatten.cpp - Kernel extraction (Section 5) ----------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "flatten/Flatten.h"

#include "trace/Trace.h"

#include "ir/Builder.h"
#include "ir/Traversal.h"
#include "opt/Simplify.h"

#include <deque>

using namespace fut;

namespace {

/// One level of the map-nest context Σ: "M x y" of Fig 12 — the bound
/// lambda parameters x over the arrays y, plus the width and the thread
/// index standing for this level in extracted kernels.
struct MapCtx {
  SubExp Width;
  VName Tid;
  std::vector<Param> Params;
  std::vector<VName> Arrays;
  /// Per input: the array is a host-level iota, so the parameter is just
  /// the thread index.
  std::vector<bool> FromIota;
};

/// How an inner name was expanded to a host-level array by distribution
/// (G4): Arr has Depth leading context dimensions; indexing it by the
/// first Depth thread indices recovers the inner value of type InnerTy.
struct Expansion {
  VName Arr;
  int Depth = 0;
  Type InnerTy;
};

class KernelExtractor {
  NameSource &NS;
  const FlattenOptions &Opts;
  FlattenStats Stats;

  /// Types of names in host scope (function parameters, emitted bindings,
  /// host-loop merge parameters).  Used to decide what is "available" at
  /// top level — the irregularity guard of G4 — and which kernel free
  /// variables are array inputs.
  NameMap<Type> TopTypes;

  /// Host-level replicate definitions, for extracting the scalar neutral
  /// element in rule G5 (reduce (f) (replicate k n) z).
  NameMap<std::pair<SubExp, SubExp>> HostReplicates;

  /// Host-level iota definitions: a map over "iota n" binds its parameter
  /// directly to the thread index instead of reading an index array.
  NameSet HostIotas;

public:
  KernelExtractor(NameSource &NS, const FlattenOptions &Opts)
      : NS(NS), Opts(Opts) {}

  FlattenStats run(Program &P) {
    for (FunDef &F : P.Funs) {
      TopTypes.clear();
      HostReplicates.clear();
      HostIotas.clear();
      for (const Param &Prm : F.Params)
        noteHost(Prm.Name, Prm.Ty);
      F.FBody = transformHostBody(std::move(F.FBody));
    }
    return Stats;
  }

private:
  bool hostAvail(const SubExp &S) const {
    return S.isConst() || TopTypes.count(S.getVar());
  }

  std::vector<bool> iotaFlags(const std::vector<VName> &Arrays) const {
    std::vector<bool> Out;
    for (const VName &A : Arrays)
      Out.push_back(HostIotas.count(A) > 0);
    return Out;
  }

  /// Replaces dimensions that are not host-available with fresh
  /// existential size variables, so kernel return types never dangle.
  Type sanitizeType(const Type &T) {
    std::vector<Dim> Dims;
    for (const Dim &D : T.shape())
      Dims.push_back(hostAvail(D) ? D : SubExp::var(NS.fresh("exist")));
    return Type(T.elemKind(), std::move(Dims));
  }

  //===--------------------------------------------------------------------===//
  // Host-level emission helpers
  //===--------------------------------------------------------------------===//

  /// Registers a host-scope binding, including its symbolic dimensions
  /// (which are bound dynamically and are thus host-available sizes).
  void noteHost(const VName &N, const Type &Ty) {
    TopTypes[N] = Ty;
    for (const Dim &D : Ty.shape())
      if (D.isVar() && !TopTypes.count(D.getVar()))
        TopTypes[D.getVar()] = Type::scalar(ScalarKind::I32);
  }

  void emit(BodyBuilder &Host, Stm S) {
    for (const Param &P : S.Pat)
      noteHost(P.Name, P.Ty);
    if (const auto *R = expDynCast<ReplicateExp>(S.E.get()))
      if (S.Pat.size() == 1)
        HostReplicates[S.Pat[0].Name] = {R->N, R->Val};
    if (S.E->kind() == ExpKind::Iota && S.Pat.size() == 1)
      HostIotas.insert(S.Pat[0].Name);
    Host.append(std::move(S));
  }

  std::vector<VName> emitMulti(BodyBuilder &Host, const std::string &Base,
                               const std::vector<Type> &Tys, ExpPtr E) {
    std::vector<VName> Names = Host.bindMulti(Base, Tys, std::move(E));
    for (size_t I = 0; I < Names.size(); ++I)
      noteHost(Names[I], Tys[I]);
    return Names;
  }

  VName emitOne(BodyBuilder &Host, const std::string &Base, Type Ty,
                ExpPtr E) {
    VName N = Host.bind(Base, Ty, std::move(E));
    noteHost(N, Ty);
    return N;
  }

  //===--------------------------------------------------------------------===//
  // Host body traversal
  //===--------------------------------------------------------------------===//

  Body transformHostBody(Body B) {
    BodyBuilder Host(NS);
    std::deque<Stm> Work;
    for (Stm &S : B.Stms)
      Work.push_back(std::move(S));

    while (!Work.empty()) {
      Stm S = std::move(Work.front());
      Work.pop_front();
      Exp &E = *S.E;

      switch (E.kind()) {
      case ExpKind::Map: {
        auto *M = expCast<MapExp>(&E);
        MapCtx Ctx{M->Width, NS.fresh("gtid"), M->Fn.Params, M->Arrays,
                   iotaFlags(M->Arrays)};
        NameMap<Expansion> Avail;
        std::vector<VName> Rets =
            flattenNest({Ctx}, std::move(M->Fn.B), Avail, Host);
        aliasResults(Host, S.Pat, Rets);
        continue;
      }
      case ExpKind::Reduce: {
        if (!Opts.KernelizeReduce) {
          // Left sequential on the host (reference-implementation mode).
          ++Stats.SequentialisedSOACs;
          emit(Host, std::move(S));
          continue;
        }
        NameMap<Expansion> Avail;
        kernelizeReduce({}, S, Avail, Host);
        continue;
      }
      case ExpKind::Scan: {
        auto *Sc = expCast<ScanExp>(&E);
        bool Scalar = true;
        for (const Type &T : Sc->Fn.RetTypes)
          Scalar = Scalar && T.isScalar();
        if (!Scalar) {
          // Vector-valued scan: keep on the host (sequential).
          ++Stats.SequentialisedSOACs;
          emit(Host, std::move(S));
          continue;
        }
        NameMap<Expansion> Avail;
        kernelizeScan({}, S, Avail, Host);
        continue;
      }
      case ExpKind::ReduceByIndex:
        kernelizeReduceByIndex(S, Host);
        continue;
      case ExpKind::Stream:
        lowerHostStream(std::move(S), Work, Host);
        continue;
      case ExpKind::Loop: {
        auto *L = expCast<LoopExp>(&E);
        for (const Param &P : L->MergeParams)
          noteHost(P.Name, P.Ty);
        TopTypes[L->IndexVar] = Type::scalar(ScalarKind::I32);
        L->LoopBody = transformHostBody(std::move(L->LoopBody));
        emit(Host, std::move(S));
        continue;
      }
      case ExpKind::If: {
        auto *I = expCast<IfExp>(&E);
        I->Then = transformHostBody(std::move(I->Then));
        I->Else = transformHostBody(std::move(I->Else));
        emit(Host, std::move(S));
        continue;
      }
      default:
        emit(Host, std::move(S));
        continue;
      }
    }
    return Host.finish(std::move(B.Result));
  }

  void aliasResults(BodyBuilder &Host, const std::vector<Param> &Pat,
                    const std::vector<VName> &Rets) {
    assert(Pat.size() == Rets.size() && "result arity mismatch");
    for (size_t I = 0; I < Pat.size(); ++I) {
      noteHost(Pat[I].Name, Pat[I].Ty);
      Host.append({Pat[I]}, varE(Rets[I]));
    }
  }

  //===--------------------------------------------------------------------===//
  // Host-level streams
  //===--------------------------------------------------------------------===//

  void lowerHostStream(Stm S, std::deque<Stm> &Work, BodyBuilder &Host) {
    auto *St = expCast<StreamExp>(S.E.get());
    switch (St->Form) {
    case StreamExp::FormKind::Seq: {
      // stream_seq f a  ==  f a with one maximal chunk (Section 4.1):
      // splice the fold body with m := width and chunks := whole arrays,
      // then reprocess the spliced code (its inner SOACs get kernels).
      NameMap<SubExp> Map;
      Lambda Fold = St->FoldFn;
      Map[Fold.Params[0].Name] = St->Width;
      for (int I = 0; I < St->NumAccs; ++I)
        Map[Fold.Params[1 + I].Name] = St->AccInit[I];
      for (size_t I = 0; I < St->Arrays.size(); ++I)
        Map[Fold.Params[1 + St->NumAccs + I].Name] =
            SubExp::var(St->Arrays[I]);
      Body Spliced = renameBody(Fold.B, NS, Map);
      std::vector<Stm> Repro = std::move(Spliced.Stms);
      for (size_t I = 0; I < S.Pat.size(); ++I)
        Repro.emplace_back(std::vector<Param>{S.Pat[I]},
                           subExpE(Spliced.Result[I]));
      for (auto It = Repro.rbegin(); It != Repro.rend(); ++It)
        Work.push_front(std::move(*It));
      return;
    }

    case StreamExp::FormKind::Par: {
      // Maximal parallelism: chunk size one, i.e. an ordinary map whose
      // body runs the fold on a singleton chunk.
      size_t NumMapped = St->FoldFn.RetTypes.size() - St->NumAccs;
      Lambda Fold = renameLambda(St->FoldFn, NS);
      std::vector<Param> ElemParams;
      NameMap<SubExp> Map;
      Map[Fold.Params[0].Name] = SubExp::constant(PrimValue::makeI32(1));
      BodyBuilder BB(NS);
      for (size_t I = 0; I < St->Arrays.size(); ++I) {
        const Param &ChunkP = Fold.Params[1 + I];
        Type RowTy = ChunkP.Ty.rowType();
        VName ElemN = NS.fresh("elem");
        ElemParams.emplace_back(ElemN, RowTy);
        VName Single =
            BB.bind("single", ChunkP.Ty,
                    std::make_unique<ReplicateExp>(
                        SubExp::constant(PrimValue::makeI32(1)),
                        SubExp::var(ElemN), RowTy));
        Map[ChunkP.Name] = SubExp::var(Single);
      }
      Body FoldB = std::move(Fold.B);
      substituteInBody(Map, FoldB);
      for (Stm &FS : FoldB.Stms)
        BB.append(std::move(FS));
      std::vector<SubExp> Res;
      std::vector<Type> RetTys;
      for (size_t I = 0; I < NumMapped; ++I) {
        const SubExp &R = FoldB.Result[St->NumAccs + I];
        Type InnerTy = Fold.RetTypes[St->NumAccs + I].rowType();
        assert(R.isVar() && "mapped stream result must be a variable");
        SubExp V = BB.index(R.getVar(),
                            {SubExp::constant(PrimValue::makeI32(0))},
                            InnerTy);
        Res.push_back(V);
        RetTys.push_back(InnerTy);
      }
      Lambda ElemFn(std::move(ElemParams), BB.finish(std::move(Res)),
                    std::move(RetTys));
      Stm NewStm(S.Pat, std::make_unique<MapExp>(St->Width,
                                                 std::move(ElemFn),
                                                 St->Arrays));
      Work.push_front(std::move(NewStm));
      return;
    }

    case StreamExp::FormKind::Red: {
      size_t NumMapped = St->FoldFn.RetTypes.size() - St->NumAccs;
      if (NumMapped != 0) {
        // Rare mixed form: keep on the host.
        ++Stats.SequentialisedSOACs;
        emit(Host, std::move(S));
        return;
      }
      lowerHostStreamRed(std::move(S), Work, Host);
      return;
    }
    }
  }

  /// Chunks a host-level stream_red across the device: one ThreadBody
  /// kernel runs the fold per chunk; the per-chunk accumulators are then
  /// combined by an ordinary reduce, which is re-processed (usually into a
  /// segmented reduction by G5).
  void lowerHostStreamRed(Stm S, std::deque<Stm> &Work, BodyBuilder &Host) {
    auto *St = expCast<StreamExp>(S.E.get());
    SubExp W = St->Width;

    // numChunks = min(w, StreamChunks); the chunks are interleaved
    // (chunk g holds elements g, g+P, g+2P, ...), so that simultaneous
    // accesses from consecutive chunk threads coalesce.
    SubExp MaxChunks = SubExp::constant(
        PrimValue::makeI32(Opts.StreamChunks));
    Type I32T = Type::scalar(ScalarKind::I32);
    VName NumChunks = emitOne(Host, "numchunks", I32T,
                              std::make_unique<BinOpExp>(BinOp::Min, W,
                                                         MaxChunks));

    // The per-chunk fold kernel; chunk length is ceil((w - g) / P).
    VName Tid = NS.fresh("chunkid");
    Lambda Fold = renameLambda(St->FoldFn, NS);
    BodyBuilder TB(NS);
    VName Rem = TB.bind("rem", I32T,
                        std::make_unique<BinOpExp>(BinOp::Sub, W,
                                                   SubExp::var(Tid)));
    VName RemP = TB.bind("remp", I32T,
                         std::make_unique<BinOpExp>(
                             BinOp::Add, SubExp::var(Rem),
                             SubExp::var(NumChunks)));
    VName RemPm1 = TB.bind("rempm1", I32T,
                           std::make_unique<BinOpExp>(
                               BinOp::Sub, SubExp::var(RemP),
                               SubExp::constant(PrimValue::makeI32(1))));
    VName Len = TB.bind("len", I32T,
                        std::make_unique<BinOpExp>(
                            BinOp::Div, SubExp::var(RemPm1),
                            SubExp::var(NumChunks)));
    NameMap<SubExp> Map;
    Map[Fold.Params[0].Name] = SubExp::var(Len);
    for (int I = 0; I < St->NumAccs; ++I)
      Map[Fold.Params[1 + I].Name] = St->AccInit[I];
    for (size_t I = 0; I < St->Arrays.size(); ++I) {
      const Param &ChunkP = Fold.Params[1 + St->NumAccs + I];
      Type ChunkTy = ChunkP.Ty.rowType().arrayOf(SubExp::var(Len));
      VName Chunk = TB.bind("chunk", ChunkTy,
                            std::make_unique<SliceExp>(
                                St->Arrays[I], SubExp::var(Tid),
                                SubExp::var(Len),
                                SubExp::var(NumChunks)));
      Map[ChunkP.Name] = SubExp::var(Chunk);
    }
    Body FoldB = std::move(Fold.B);
    substituteInBody(Map, FoldB);
    for (Stm &FS : FoldB.Stms)
      TB.append(std::move(FS));
    std::vector<SubExp> AccRes(FoldB.Result.begin(),
                               FoldB.Result.begin() + St->NumAccs);

    auto K = std::make_unique<KernelExp>();
    K->Op = KernelExp::OpKind::ThreadBody;
    K->GridDims = {SubExp::var(NumChunks)};
    K->ThreadIndices = {Tid};
    K->ThreadBody = TB.finish(std::move(AccRes));
    simplifyBody(K->ThreadBody, NS);
    std::vector<Type> PartTys;
    for (int I = 0; I < St->NumAccs; ++I) {
      Type AccTy = sanitizeType(Fold.RetTypes[I]);
      K->RetTypes.push_back(AccTy.arrayOf(SubExp::var(NumChunks)));
      PartTys.push_back(K->RetTypes.back());
    }
    freshenKernel(*K);
    fillKernelInputs(*K);
    ++Stats.ThreadKernels;
    std::vector<VName> Parts =
        emitMulti(Host, "partials", PartTys, std::move(K));

    // Combine the partial accumulators: reprocess as an ordinary reduce.
    Stm RedStm(S.Pat, std::make_unique<ReduceExp>(
                          SubExp::var(NumChunks), St->ReduceFn, St->AccInit,
                          Parts, /*Commutative=*/false));
    Work.push_front(std::move(RedStm));
  }

  /// Alpha-renames a kernel's bound names (thread indices, segment index,
  /// thread-body bindings) so that kernels sharing a map-nest context do
  /// not bind the same names twice in one function.
  void freshenKernel(KernelExp &K) {
    NameMap<SubExp> M;
    for (VName &T : K.ThreadIndices) {
      VName Fresh = NS.freshFrom(T);
      M[T] = SubExp::var(Fresh);
      T = Fresh;
    }
    if (K.isSegmented()) {
      VName Fresh = NS.freshFrom(K.SegIndex);
      M[K.SegIndex] = SubExp::var(Fresh);
      K.SegIndex = Fresh;
    }
    K.ThreadBody = renameBody(K.ThreadBody, NS, M);
    if (K.usesReduceFn())
      K.ReduceFn = renameLambda(K.ReduceFn, NS, M);
  }

  /// Computes the Inputs list of a kernel: every free array variable (per
  /// the host type table).
  void fillKernelInputs(KernelExp &K) {
    NameSet Free = freeVarsInExp(K);
    for (const VName &V : Free) {
      auto It = TopTypes.find(V);
      if (It == TopTypes.end() || !It->second.isArray())
        continue;
      KernelExp::KInput In;
      In.Arr = V;
      In.Ty = It->second;
      In.LayoutPerm = identityPerm(It->second.rank());
      K.Inputs.push_back(std::move(In));
    }
  }

  //===--------------------------------------------------------------------===//
  // The map-nest distributor
  //===--------------------------------------------------------------------===//

  struct NestState {
    std::vector<MapCtx> Sigma;
    NameMap<Expansion> &Avail;
    NameMap<Type> InnerTypes;
    std::vector<Stm> Work;
    std::vector<SubExp> Result;
    size_t Pos = 0;
    std::vector<Stm> Segment;

    NestState(std::vector<MapCtx> Sigma, Body B, NameMap<Expansion> &Avail)
        : Sigma(std::move(Sigma)), Avail(Avail), Work(std::move(B.Stms)),
          Result(std::move(B.Result)) {
      for (const MapCtx &Ctx : this->Sigma)
        for (const Param &P : Ctx.Params)
          InnerTypes[P.Name] = P.Ty;
      for (const auto &[Name, Exp] : Avail)
        InnerTypes[Name] = Exp.InnerTy;
    }

    std::vector<SubExp> gridDims() const {
      std::vector<SubExp> Out;
      for (const MapCtx &Ctx : Sigma)
        Out.push_back(Ctx.Width);
      return Out;
    }
    std::vector<VName> tids() const {
      std::vector<VName> Out;
      for (const MapCtx &Ctx : Sigma)
        Out.push_back(Ctx.Tid);
      return Out;
    }
    int depth() const { return static_cast<int>(Sigma.size()); }
  };

  /// Does any remaining statement (from Work[Pos]) or the body result use
  /// \p V?
  bool usedLater(const NestState &St, const VName &V) const {
    for (size_t I = St.Pos; I < St.Work.size(); ++I) {
      NameSet Free = freeVarsInExp(*St.Work[I].E);
      if (Free.count(V))
        return true;
      for (const Param &P : St.Work[I].Pat)
        for (const Dim &D : P.Ty.shape())
          if (D.isVar() && D.getVar() == V)
            return true;
    }
    for (const SubExp &R : St.Result)
      if (R.isVar() && R.getVar() == V)
        return true;
    return false;
  }

  /// Emits the context/expansion prelude into \p Stms: bindings that
  /// reconstruct the inner-scope names a thread needs.
  void emitPrelude(NestState &St, std::vector<Stm> &Stms,
                   const NameSet &Free) {
    NameSet Emitted;
    auto EnsureAvail = [&](const VName &V) {
      auto It = St.Avail.find(V);
      if (It == St.Avail.end() || Emitted.count(V))
        return;
      Emitted.insert(V);
      const Expansion &E = It->second;
      std::vector<SubExp> Idx;
      for (int I = 0; I < E.Depth; ++I)
        Idx.push_back(SubExp::var(St.Sigma[I].Tid));
      ExpPtr Read =
          Idx.empty() ? varE(E.Arr)
                      : ExpPtr(std::make_unique<IndexExp>(E.Arr,
                                                          std::move(Idx)));
      Stms.emplace_back(std::vector<Param>{Param(V, E.InnerTy)},
                        std::move(Read));
    };

    // Context bindings level by level; each level's arrays may themselves
    // be expansions or outer parameters.
    for (size_t J = 0; J < St.Sigma.size(); ++J) {
      const MapCtx &Ctx = St.Sigma[J];
      for (const VName &A : Ctx.Arrays)
        EnsureAvail(A);
      for (size_t K = 0; K < Ctx.Params.size(); ++K) {
        if (K < Ctx.FromIota.size() && Ctx.FromIota[K]) {
          Stms.emplace_back(std::vector<Param>{Ctx.Params[K]},
                            varE(Ctx.Tid));
          continue;
        }
        Stms.emplace_back(
            std::vector<Param>{Ctx.Params[K]},
            std::make_unique<IndexExp>(
                Ctx.Arrays[K],
                std::vector<SubExp>{SubExp::var(Ctx.Tid)}));
      }
    }
    for (const VName &V : Free)
      EnsureAvail(V);
  }

  /// G1/G4: manifests the context over the accumulated scalar segment,
  /// emitting one ThreadBody kernel whose results are the segment outputs
  /// still needed.
  void flushSegment(NestState &St, BodyBuilder &Host,
                    std::vector<Param> ExtraNeeded = {}) {
    if (St.Segment.empty() && ExtraNeeded.empty())
      return;
    for (Stm &S : St.Segment)
      for (const Param &P : S.Pat)
        St.InnerTypes[P.Name] = P.Ty;

    std::vector<Param> Needed = std::move(ExtraNeeded);
    NameSet NeededSet;
    for (const Param &P : Needed)
      NeededSet.insert(P.Name);
    for (const Stm &S : St.Segment)
      for (const Param &P : S.Pat)
        if (!NeededSet.count(P.Name) && usedLater(St, P.Name)) {
          Needed.push_back(P);
          NeededSet.insert(P.Name);
        }
    if (Needed.empty()) {
      St.Segment.clear();
      return;
    }

    NameSet Free;
    for (const Stm &S : St.Segment) {
      NameSet F = freeVarsInExp(*S.E);
      Free.insert(F.begin(), F.end());
    }

    std::vector<Stm> TStms;
    emitPrelude(St, TStms, Free);
    for (Stm &S : St.Segment)
      TStms.push_back(std::move(S));
    St.Segment.clear();

    std::vector<SubExp> Res;
    for (const Param &P : Needed)
      Res.push_back(SubExp::var(P.Name));

    auto K = std::make_unique<KernelExp>();
    K->Op = KernelExp::OpKind::ThreadBody;
    K->GridDims = St.gridDims();
    K->ThreadIndices = St.tids();
    K->ThreadBody = Body(std::move(TStms), std::move(Res));
    simplifyBody(K->ThreadBody, NS);

    std::vector<Type> RetTys;
    for (const Param &P : Needed) {
      Type Full = sanitizeType(P.Ty).arrayOfShape(K->GridDims);
      K->RetTypes.push_back(Full);
      RetTys.push_back(Full);
    }
    freshenKernel(*K);
    fillKernelInputs(*K);
    ++Stats.ThreadKernels;

    std::vector<VName> Exp = emitMulti(Host, "dist", RetTys, std::move(K));
    for (size_t I = 0; I < Needed.size(); ++I)
      St.Avail[Needed[I].Name] =
          Expansion{Exp[I], St.depth(), Needed[I].Ty};
  }

  /// The main distribution loop over one body under a map-nest context.
  /// Returns host names of the fully expanded body results.
  std::vector<VName> flattenNest(std::vector<MapCtx> Sigma, Body B,
                                 NameMap<Expansion> AvailIn,
                                 BodyBuilder &Host) {
    NameMap<Expansion> Avail = std::move(AvailIn);
    NestState St(std::move(Sigma), std::move(B), Avail);

    for (St.Pos = 0; St.Pos < St.Work.size(); ++St.Pos) {
      Stm &S = St.Work[St.Pos];
      Exp &E = *S.E;

      if (auto *M = expDynCast<MapExp>(&E)) {
        if (hostAvail(M->Width) && inputsAvailable(St, M->Arrays)) {
          flushSegment(St, Host);
          // G2: capture the nested map in the context.
          MapCtx Ctx{M->Width, NS.fresh("gtid"), M->Fn.Params, M->Arrays,
                     iotaFlags(M->Arrays)};
          std::vector<MapCtx> Deeper = St.Sigma;
          Deeper.push_back(std::move(Ctx));
          std::vector<VName> Rets =
              flattenNest(std::move(Deeper), std::move(M->Fn.B), Avail,
                          Host);
          for (size_t I = 0; I < S.Pat.size(); ++I) {
            Avail[S.Pat[I].Name] =
                Expansion{Rets[I], St.depth(), S.Pat[I].Ty};
            St.InnerTypes[S.Pat[I].Name] = S.Pat[I].Ty;
          }
          continue;
        }
        ++Stats.SequentialisedSOACs;
        sequentialiseIntoSegment(St, S);
        continue;
      }

      if (auto *R = expDynCast<ReduceExp>(&E)) {
        if (hostAvail(R->Width) && inputsAvailable(St, R->Arrays) &&
            neutralsAvailable(St, R->Neutral)) {
          flushSegment(St, Host);
          kernelizeReduce(St.Sigma, S, Avail, Host, &St);
          continue;
        }
        ++Stats.SequentialisedSOACs;
        sequentialiseIntoSegment(St, S);
        continue;
      }

      if (auto *Sc = expDynCast<ScanExp>(&E)) {
        bool Scalar = true;
        for (const Type &T : Sc->Fn.RetTypes)
          Scalar = Scalar && T.isScalar();
        if (Scalar && hostAvail(Sc->Width) &&
            inputsAvailable(St, Sc->Arrays) &&
            neutralsAvailable(St, Sc->Neutral)) {
          flushSegment(St, Host);
          kernelizeScan(St.Sigma, S, Avail, Host, &St);
          continue;
        }
        ++Stats.SequentialisedSOACs;
        sequentialiseIntoSegment(St, S);
        continue;
      }

      if (expDynCast<ReduceByIndexExp>(&E)) {
        // A histogram nested inside a map: sequentialised into the
        // surrounding thread (its own parallelism is the inner dimension,
        // which the thread-per-outer-element decomposition already uses).
        ++Stats.SequentialisedSOACs;
        sequentialiseIntoSegment(St, S);
        continue;
      }

      if (auto *L = expDynCast<LoopExp>(&E)) {
        if (Opts.EnableInterchange && hostAvail(L->Bound) &&
            containsParallelism(L->LoopBody)) {
          interchangeMapLoop(St, S, Host);
          continue;
        }
        sequentialiseIntoSegment(St, S);
        continue;
      }

      if (E.kind() == ExpKind::Stream)
        ++Stats.SequentialisedSOACs;
      sequentialiseIntoSegment(St, S);
    }
    St.Pos = St.Work.size();
    flushSegment(St, Host);

    // Deliver the body results as fully expanded arrays.  Results that are
    // not yet expansions at full depth (constants, context parameters,
    // values expanded at a shallower depth) are materialised by a final
    // copy kernel — the double-buffering copies the paper mentions.
    std::vector<VName> SegName(St.Result.size());
    std::vector<Param> Extra;
    for (size_t I = 0; I < St.Result.size(); ++I) {
      const SubExp &R = St.Result[I];
      if (R.isVar()) {
        auto It = Avail.find(R.getVar());
        if (It != Avail.end() && It->second.Depth == St.depth())
          continue;
      }
      Type Ty = R.isConst() ? Type::scalar(R.getConst().kind())
                            : (St.InnerTypes.count(R.getVar())
                                   ? St.InnerTypes.at(R.getVar())
                                   : Type::scalar(ScalarKind::I32));
      VName N = NS.fresh("res");
      St.Segment.emplace_back(std::vector<Param>{Param(N, Ty)}, subExpE(R));
      Extra.emplace_back(N, Ty);
      SegName[I] = N;
    }
    if (!Extra.empty()) {
      St.Pos = St.Work.size();
      flushSegment(St, Host, Extra);
    }

    std::vector<VName> Out;
    for (size_t I = 0; I < St.Result.size(); ++I) {
      const VName Key =
          SegName[I].Tag >= 0 ? SegName[I] : St.Result[I].getVar();
      assert(Avail.count(Key) && "body result was not expanded");
      Out.push_back(Avail.at(Key).Arr);
    }
    return Out;
  }

  /// True if every input array name is resolvable inside a kernel at this
  /// context: a context parameter, an expansion, or a host-level array.
  bool inputsAvailable(const NestState &St,
                       const std::vector<VName> &Arrays) const {
    for (const VName &A : Arrays) {
      bool Ok = St.Avail.count(A) || TopTypes.count(A);
      for (const MapCtx &Ctx : St.Sigma)
        for (const Param &P : Ctx.Params)
          Ok = Ok || P.Name == A;
      if (!Ok)
        return false;
    }
    return true;
  }

  bool neutralsAvailable(const NestState &St,
                         const std::vector<SubExp> &Neutral) const {
    for (const SubExp &N : Neutral)
      if (N.isVar() && !TopTypes.count(N.getVar()))
        return false;
    return true;
  }

  static bool containsParallelism(const Body &B) {
    for (const Stm &S : B.Stms) {
      switch (S.E->kind()) {
      case ExpKind::Map:
      case ExpKind::Reduce:
      case ExpKind::Scan:
        return true;
      default:
        break;
      }
      bool Found = false;
      forEachChildBody(*S.E, [&](const Body &Inner) {
        Found = Found || containsParallelism(Inner);
      });
      if (Found)
        return true;
    }
    return false;
  }

  void sequentialiseIntoSegment(NestState &St, Stm &S) {
    for (const Param &P : S.Pat)
      St.InnerTypes[P.Name] = P.Ty;
    St.Segment.push_back(std::move(S));
  }

  //===--------------------------------------------------------------------===//
  // Segmented reductions and scans
  //===--------------------------------------------------------------------===//

  /// Resolves an input array name to something readable in a thread body;
  /// prelude bindings make context params and expansions available, so
  /// this is just the name itself.
  void kernelizeReduce(const std::vector<MapCtx> &Sigma, Stm &S,
                       NameMap<Expansion> &Avail, BodyBuilder &Host,
                       NestState *NestOpt = nullptr) {
    auto *R = expCast<ReduceExp>(S.E.get());

    // G5 detection: a vectorised operator "map op" over [k]-rows with a
    // host-level "replicate k n" neutral.
    Lambda InnerOp;
    SubExp VecDim;
    std::vector<SubExp> ScalarNeutral;
    bool G5 = Opts.EnableSegReduce &&
              extractVectorisedOp(*R, InnerOp, VecDim, ScalarNeutral);

    NestState LocalSt({}, Body{}, Avail);
    NestState &St = NestOpt ? *NestOpt : LocalSt;
    if (NestOpt == nullptr)
      St.Sigma = Sigma;

    VName SegIdx = NS.fresh("segi");
    std::vector<Stm> TStms;
    NameSet Free;
    for (const VName &A : R->Arrays)
      Free.insert(A);
    emitPrelude(St, TStms, Free);

    auto K = std::make_unique<KernelExp>();
    K->GridDims = St.gridDims();
    K->ThreadIndices = St.tids();
    K->SegIndex = SegIdx;
    K->SegSize = R->Width;

    std::vector<SubExp> Elems;
    if (G5) {
      VName Vk = NS.fresh("vtid");
      K->GridDims.push_back(VecDim);
      K->ThreadIndices.push_back(Vk);
      for (size_t I = 0; I < R->Arrays.size(); ++I) {
        Type RowTy = R->Fn.Params[R->Neutral.size() + I].Ty; // [k]elem
        VName Row = NS.fresh("row");
        TStms.emplace_back(
            std::vector<Param>{Param(Row, RowTy)},
            std::make_unique<IndexExp>(
                R->Arrays[I], std::vector<SubExp>{SubExp::var(SegIdx)}));
        VName Elem = NS.fresh("elem");
        TStms.emplace_back(
            std::vector<Param>{Param(Elem,
                                     Type::scalar(RowTy.elemKind()))},
            std::make_unique<IndexExp>(Row, std::vector<SubExp>{
                                                SubExp::var(Vk)}));
        Elems.push_back(SubExp::var(Elem));
      }
      K->Op = KernelExp::OpKind::SegReduce;
      K->ReduceFn = std::move(InnerOp);
      K->Neutral = ScalarNeutral;
      ++Stats.VectorisedReduceInterchanges;
    } else {
      for (size_t I = 0; I < R->Arrays.size(); ++I) {
        Type ElemTy = R->Fn.Params[R->Neutral.size() + I].Ty;
        VName Elem = NS.fresh("elem");
        if (HostIotas.count(R->Arrays[I])) {
          TStms.emplace_back(std::vector<Param>{Param(Elem, ElemTy)},
                             varE(SegIdx));
        } else {
          TStms.emplace_back(
              std::vector<Param>{Param(Elem, ElemTy)},
              std::make_unique<IndexExp>(
                  R->Arrays[I],
                  std::vector<SubExp>{SubExp::var(SegIdx)}));
        }
        Elems.push_back(SubExp::var(Elem));
      }
      K->Op = KernelExp::OpKind::SegReduce;
      K->ReduceFn = cloneLambda(R->Fn);
      K->Neutral = R->Neutral;
    }
    K->ThreadBody = Body(std::move(TStms), std::move(Elems));
    simplifyBody(K->ThreadBody, NS);

    std::vector<Type> RetTys;
    for (size_t I = 0; I < S.Pat.size(); ++I) {
      Type Inner = G5 ? Type::scalar(S.Pat[I].Ty.elemKind())
                      : sanitizeType(S.Pat[I].Ty);
      Type Full = Inner.arrayOfShape(K->GridDims);
      K->RetTypes.push_back(Full);
      RetTys.push_back(Full);
    }
    freshenKernel(*K);
    fillKernelInputs(*K);
    ++Stats.SegReduces;

    std::vector<VName> Outs =
        emitMulti(Host, "red", RetTys, std::move(K));
    if (St.depth() == 0) {
      // Host level: bind the original pattern directly.
      aliasResults(Host, S.Pat, Outs);
    } else {
      for (size_t I = 0; I < S.Pat.size(); ++I) {
        Avail[S.Pat[I].Name] =
            Expansion{Outs[I], St.depth(), S.Pat[I].Ty};
        St.InnerTypes[S.Pat[I].Name] = S.Pat[I].Ty;
      }
    }
  }

  void kernelizeScan(const std::vector<MapCtx> &Sigma, Stm &S,
                     NameMap<Expansion> &Avail, BodyBuilder &Host,
                     NestState *NestOpt = nullptr) {
    auto *Sc = expCast<ScanExp>(S.E.get());
    NestState LocalSt({}, Body{}, Avail);
    NestState &St = NestOpt ? *NestOpt : LocalSt;
    if (NestOpt == nullptr)
      St.Sigma = Sigma;

    VName SegIdx = NS.fresh("segi");
    std::vector<Stm> TStms;
    NameSet Free;
    for (const VName &A : Sc->Arrays)
      Free.insert(A);
    emitPrelude(St, TStms, Free);

    std::vector<SubExp> Elems;
    for (size_t I = 0; I < Sc->Arrays.size(); ++I) {
      Type ElemTy = Sc->Fn.Params[Sc->Neutral.size() + I].Ty;
      VName Elem = NS.fresh("elem");
      if (HostIotas.count(Sc->Arrays[I])) {
        TStms.emplace_back(std::vector<Param>{Param(Elem, ElemTy)},
                           varE(SegIdx));
      } else {
        TStms.emplace_back(
            std::vector<Param>{Param(Elem, ElemTy)},
            std::make_unique<IndexExp>(
                Sc->Arrays[I], std::vector<SubExp>{SubExp::var(SegIdx)}));
      }
      Elems.push_back(SubExp::var(Elem));
    }

    auto K = std::make_unique<KernelExp>();
    K->Op = KernelExp::OpKind::SegScan;
    K->GridDims = St.gridDims();
    K->ThreadIndices = St.tids();
    K->SegIndex = SegIdx;
    K->SegSize = Sc->Width;
    K->ReduceFn = cloneLambda(Sc->Fn);
    K->Neutral = Sc->Neutral;
    K->ThreadBody = Body(std::move(TStms), std::move(Elems));
    simplifyBody(K->ThreadBody, NS);

    std::vector<Type> RetTys;
    for (size_t I = 0; I < S.Pat.size(); ++I) {
      Type Full = sanitizeType(S.Pat[I].Ty).arrayOfShape(K->GridDims);
      K->RetTypes.push_back(Full);
      RetTys.push_back(Full);
    }
    freshenKernel(*K);
    fillKernelInputs(*K);
    ++Stats.SegScans;

    std::vector<VName> Outs =
        emitMulti(Host, "scanr", RetTys, std::move(K));
    if (St.depth() == 0) {
      aliasResults(Host, S.Pat, Outs);
    } else {
      for (size_t I = 0; I < S.Pat.size(); ++I) {
        Avail[S.Pat[I].Name] =
            Expansion{Outs[I], St.depth(), S.Pat[I].Ty};
        St.InnerTypes[S.Pat[I].Name] = S.Pat[I].Ty;
      }
    }
  }

  /// Lowers a host-level reduce_by_index into a SegHist kernel: one thread
  /// per input element, whose body reads the element's bin and value rows,
  /// applies the (possibly fused) value function, and yields (bin, value).
  /// The runtime folds the (bin, value) pairs into the consumed destination
  /// with the combine operator, choosing between local-memory subhistograms
  /// and global atomics by histogram width.
  void kernelizeReduceByIndex(Stm &S, BodyBuilder &Host) {
    auto *R = expCast<ReduceByIndexExp>(S.E.get());
    assert(TopTypes.count(R->IndexArr) &&
           "reduce_by_index index array must be host-available");
    Type IdxTy = TopTypes.at(R->IndexArr);
    SubExp N = IdxTy.outerDim();

    VName Tid = NS.fresh("htid");
    std::vector<Stm> TStms;

    // bin = is[tid] (or just tid when the index array is a host iota).
    VName Bin = NS.fresh("bin");
    Type BinTy = Type::scalar(IdxTy.elemKind());
    if (HostIotas.count(R->IndexArr)) {
      TStms.emplace_back(std::vector<Param>{Param(Bin, BinTy)}, varE(Tid));
    } else {
      TStms.emplace_back(
          std::vector<Param>{Param(Bin, BinTy)},
          std::make_unique<IndexExp>(R->IndexArr,
                                     std::vector<SubExp>{SubExp::var(Tid)}));
    }

    // Value rows, spliced through the value function.
    Lambda VF = cloneLambda(R->ValueFn);
    NameMap<SubExp> Map;
    for (size_t I = 0; I < R->ValueArrs.size(); ++I) {
      Type RowTy = VF.Params[I].Ty;
      VName Elem = NS.fresh("velem");
      if (HostIotas.count(R->ValueArrs[I])) {
        TStms.emplace_back(std::vector<Param>{Param(Elem, RowTy)},
                           varE(Tid));
      } else {
        TStms.emplace_back(
            std::vector<Param>{Param(Elem, RowTy)},
            std::make_unique<IndexExp>(
                R->ValueArrs[I], std::vector<SubExp>{SubExp::var(Tid)}));
      }
      Map[VF.Params[I].Name] = SubExp::var(Elem);
    }
    Body VB = renameBody(VF.B, NS, Map);
    for (Stm &VS : VB.Stms)
      TStms.push_back(std::move(VS));

    auto K = std::make_unique<KernelExp>();
    K->Op = KernelExp::OpKind::SegHist;
    K->GridDims = {N};
    K->ThreadIndices = {Tid};
    K->ReduceFn = cloneLambda(R->CombineFn);
    K->Neutral = {R->Neutral};
    K->HistDest = R->Dest;
    K->HistWidth = R->Width;
    K->ThreadBody =
        Body(std::move(TStms), {SubExp::var(Bin), VB.Result[0]});
    simplifyBody(K->ThreadBody, NS);

    Type DestTy = sanitizeType(S.Pat[0].Ty);
    K->RetTypes = {DestTy};
    freshenKernel(*K);
    fillKernelInputs(*K);
    ++Stats.SegHists;

    std::vector<VName> Outs =
        emitMulti(Host, "hist", {DestTy}, std::move(K));
    aliasResults(Host, S.Pat, Outs);
  }

  /// Detects "reduce (map op) (replicate k n) z" and extracts the scalar
  /// operator, the row width k, and the scalar neutrals.
  bool extractVectorisedOp(const ReduceExp &R, Lambda &InnerOp,
                           SubExp &VecDim, std::vector<SubExp> &Neutral) {
    if (R.Fn.RetTypes.empty() || !R.Fn.RetTypes[0].isArray())
      return false;
    if (R.Fn.B.Stms.size() != 1)
      return false;
    const auto *M = expDynCast<MapExp>(R.Fn.B.Stms[0].E.get());
    if (!M)
      return false;
    for (const Type &T : M->Fn.RetTypes)
      if (!T.isScalar())
        return false;
    VecDim = R.Fn.RetTypes[0].outerDim();
    if (!hostAvail(VecDim))
      return false;
    // The scalar neutrals come from host-level replicates.
    for (const SubExp &N : R.Neutral) {
      if (!N.isVar())
        return false;
      auto It = HostReplicates.find(N.getVar());
      if (It == HostReplicates.end())
        return false;
      Neutral.push_back(It->second.second);
    }
    InnerOp = cloneLambda(M->Fn);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // G7: map-loop interchange
  //===--------------------------------------------------------------------===//

  void interchangeMapLoop(NestState &St, Stm &S, BodyBuilder &Host) {
    auto *L = expCast<LoopExp>(S.E.get());
    ++Stats.Interchanges;

    // Materialise the initial merge values as fully expanded arrays.
    std::vector<Param> InitNames;
    for (size_t I = 0; I < L->MergeParams.size(); ++I) {
      VName N = NS.fresh(L->MergeParams[I].Name.Base + "_init");
      St.Segment.emplace_back(
          std::vector<Param>{Param(N, L->MergeParams[I].Ty)},
          subExpE(L->MergeInit[I]));
      InitNames.emplace_back(N, L->MergeParams[I].Ty);
    }
    flushSegment(St, Host, InitNames);

    // Expanded top-level merge parameters.
    std::vector<SubExp> Grid = St.gridDims();
    std::vector<Param> TopMerge;
    std::vector<SubExp> TopInit;
    for (size_t I = 0; I < L->MergeParams.size(); ++I) {
      Type Full =
          sanitizeType(L->MergeParams[I].Ty).arrayOfShape(Grid);
      VName Zs = NS.fresh(L->MergeParams[I].Name.Base + "s");
      TopMerge.emplace_back(Zs, Full);
      noteHost(Zs, Full);
      TopInit.push_back(SubExp::var(St.Avail.at(InitNames[I].Name).Arr));
    }
    TopTypes[L->IndexVar] = Type::scalar(ScalarKind::I32);

    // The loop body: the context distributes over the original body, with
    // the merge parameters available as expanded arrays.
    NameMap<Expansion> InnerAvail = St.Avail;
    for (size_t I = 0; I < L->MergeParams.size(); ++I)
      InnerAvail[L->MergeParams[I].Name] =
          Expansion{TopMerge[I].Name, St.depth(), L->MergeParams[I].Ty};

    BodyBuilder LoopBB(NS);
    std::vector<VName> Rets = flattenNest(St.Sigma, std::move(L->LoopBody),
                                          std::move(InnerAvail), LoopBB);
    std::vector<SubExp> LoopRes;
    for (const VName &N : Rets)
      LoopRes.push_back(SubExp::var(N));

    std::vector<Type> OutTys;
    for (const Param &P : TopMerge)
      OutTys.push_back(P.Ty);
    std::vector<VName> Outs = emitMulti(
        Host, "loopout", OutTys,
        std::make_unique<LoopExp>(TopMerge, std::move(TopInit),
                                  L->IndexVar, L->Bound,
                                  LoopBB.finish(std::move(LoopRes))));

    for (size_t I = 0; I < S.Pat.size(); ++I) {
      St.Avail[S.Pat[I].Name] =
          Expansion{Outs[I], St.depth(), S.Pat[I].Ty};
      St.InnerTypes[S.Pat[I].Name] = S.Pat[I].Ty;
    }
  }
};

} // namespace

FlattenStats fut::extractKernels(Program &P, NameSource &Names,
                                 const FlattenOptions &Opts) {
  trace::ScopedSpan Span("pass:flatten", "compiler");
  FlattenStats S = KernelExtractor(Names, Opts).run(P);
  trace::counter("flatten.kernels", S.kernels());
  trace::counter("flatten.thread_kernels", S.ThreadKernels);
  trace::counter("flatten.segreduces", S.SegReduces);
  trace::counter("flatten.segscans", S.SegScans);
  trace::counter("flatten.seghists", S.SegHists);
  trace::counter("flatten.interchanges", S.Interchanges);
  trace::counter("flatten.sequentialised", S.SequentialisedSOACs);
  Span.arg("kernels", S.kernels());
  Span.arg("interchanges", S.Interchanges);
  Span.arg("sequentialised", S.SequentialisedSOACs);
  return S;
}
