//===- Flatten.h - Kernel extraction (Section 5) ----------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flattening transformation of Section 5.1: rearranges (imperfectly)
/// nested parallelism into perfect nests of parallel operators — KernelExp
/// values — using the rules of Fig 12:
///
///   G1  manifest the map-nest context over an arbitrary expression
///       (a ThreadBody kernel computing a group of scalar statements),
///   G2  capture a nested map in the map-nest context (deeper grids),
///   G3  the empty context,
///   G4  map fission / distribution, materialising the intermediates used
///       across group boundaries as expanded arrays (only when the
///       intermediate sizes are invariant to the context — distribution
///       stops before introducing irregular arrays),
///   G5  reduce with a vectorised operator -> segmented reduction over the
///       product index space (instead of a histogram-style computation),
///   G7  map-loop interchange: a loop separating the map-nest context from
///       inner parallelism is hoisted to the host, with its merge values
///       expanded over the context dimensions (double-buffered per
///       iteration, as the paper notes for HotSpot).
///
/// Heuristics follow Section 5.1: nested maps/reduces/scans are
/// parallelised; nested stream_reds (and anything under an if, or of a
/// context-variant size) are sequentialised into the enclosing thread.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_FLATTEN_FLATTEN_H
#define FUTHARKCC_FLATTEN_FLATTEN_H

#include "ir/IR.h"

namespace fut {

struct FlattenOptions {
  /// Upper bound on the number of chunks a host-level stream_red is split
  /// into (the "degree of hardware parallelism" of Section 2.4).
  int StreamChunks = 4096;
  /// Apply G7 (map-loop interchange).  Off: loops nested in maps are
  /// sequentialised inside the thread.
  bool EnableInterchange = true;
  /// Apply G5 (reduce with vectorised operator -> segmented reduce).
  /// Off: such reductions run with array-valued elements (the slow
  /// histogram-like path the paper compares against).
  bool EnableSegReduce = true;

  /// Kernelize host-level reductions.  Off models reference
  /// implementations that leave reductions sequential on the CPU
  /// (Rodinia NN, Backprop, K-means per Section 6.1).
  bool KernelizeReduce = true;
};

struct FlattenStats {
  int ThreadKernels = 0;
  int SegReduces = 0;
  int SegScans = 0;
  int SegHists = 0;
  int Interchanges = 0;
  int VectorisedReduceInterchanges = 0;
  int SequentialisedSOACs = 0;

  int kernels() const {
    return ThreadKernels + SegReduces + SegScans + SegHists;
  }
};

/// Extracts kernels from every function.  Expects a fused, simplified
/// program (the pipeline of Fig 3); afterwards all remaining SOACs are
/// either inside KernelExp thread bodies (sequentialised) or gone.
FlattenStats extractKernels(Program &P, NameSource &Names,
                            const FlattenOptions &Opts = {});

} // namespace fut

#endif // FUTHARKCC_FLATTEN_FLATTEN_H
