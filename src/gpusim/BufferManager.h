//===- BufferManager.h - Device allocations and liveness --------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Device-memory management for the GPU simulator.  Two pieces:
///
/// LivenessInfo precomputes, for every statement expression in a program,
/// the set of names live *after* it (a backward pass over every function
/// body).  Nested bodies that may re-execute (loops, lambdas) are handled
/// conservatively: everything free in the body, plus the body's own result
/// names (which feed the next iteration through merge parameters), is kept
/// live throughout the body.  The simulator queries the set at each kernel
/// launch to release device buffers no later host code or kernel can
/// reach — the fix for the historical LiveDeviceBytes leak, where kernel
/// intermediates consumed only by later kernels were never released.
///
/// DeviceBufferManager tracks refcounted device allocations keyed by IR
/// name.  Aliases (let y = x) share one allocation; bytes are released
/// when the last name referencing an allocation is dropped.  Each buffer
/// carries dual residency state — a host readback keeps the device copy
/// valid, so re-using the array on the device no longer pays a phantom
/// re-upload — and a ready-time on the simulated timeline, which is the
/// dependency the two-engine scheduler (Timeline.h) respects.
///
/// The manager runs in one of two modes:
///
///  * Plan mode (the default, setPlan): byte accounting *executes* the
///    compiler's static memory plan (mem/MemPlan.h).  Each name maps to
///    its planned slab, and occupancy is tracked per (slab, double-buffer
///    half): a flat slab holds one occupant, a hoisted slab holds two —
///    the carried generation in one half stays charged while the new one
///    is written to the other, exactly the concurrency the plan sized the
///    slab at 2x for.  A binding whose storage the plan reuses (a
///    consumed input's block, a rebound name's own half, a coloured
///    temporary) evicts only that half's stale occupancy instead of
///    double-charging.  Residency and timeline state (refcounts,
///    DeviceValid, ReadyAt) are byte-for-byte the same state machine as
///    runtime mode, so simulated cycles never depend on the mode — only
///    the byte counters do.
///
///  * Runtime mode (--no-mem-plan, no plan set): the legacy dynamic
///    arena.  Released blocks become offset-aware free ranges; adjacent
///    free ranges coalesce on release (the historical size-only free list
///    could never merge fragments, so interleaved alloc/free patterns
///    missed reuse).  An allocation served from a free range counts as a
///    free-list hit.
///
/// The manager is pure accounting: array contents always live in host
/// interpreter Values.  Renamings the simulator cannot see (loop merge
/// parameters binding a prior iteration's value) simply have no buffer
/// entry and cost nothing, matching the pre-manager model.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_GPUSIM_BUFFERMANAGER_H
#define FUTHARKCC_GPUSIM_BUFFERMANAGER_H

#include "ir/IR.h"
#include "ir/Name.h"
#include "mem/MemPlan.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fut {
namespace gpusim {

/// Per-statement live-after sets for a whole program, keyed by the
/// statement's expression object (stable for the lifetime of the Program).
class LivenessInfo {
  std::unordered_map<const Exp *, NameSet> LiveAfter;

public:
  explicit LivenessInfo(const Program &P);

  /// Names live after the statement binding \p E, or null when \p E is not
  /// a statement expression of the analysed program.
  const NameSet *liveAfter(const Exp *E) const {
    auto It = LiveAfter.find(E);
    return It == LiveAfter.end() ? nullptr : &It->second;
  }

private:
  NameSet computeBody(const Body &B, NameSet Live);
};

/// Refcounted device allocations with residency and timeline state.
class DeviceBufferManager {
  struct Alloc {
    int64_t Bytes = 0;
    int Refs = 0;
    bool DeviceValid = true;
    double ReadyAt = 0; ///< Simulated time the device copy is usable.
    int64_t Offset = 0; ///< Runtime mode: arena offset of the block.
    int Slot = 0;       ///< Plan mode: slab occupied (keys Slots).
  };

  /// Plan mode: one (slab, half)'s occupancy.  At most one allocation's
  /// bytes are charged per half; binding a new tenant into a half evicts
  /// its stale occupancy (the plan proved the lifetimes disjoint or
  /// aliasable), while the other half of a hoisted slab stays charged.
  struct SlotState {
    int OccId = -1; ///< Occupant allocation, -1 when vacant.
    bool EverUsed = false;
    bool Hoisted = false;
    VName LastName;       ///< Last occupant's IR name (reuse counting).
    int64_t MaxBytes = 0; ///< Widest tenant ever charged (plannedPeakBytes
                          ///< fallback for symbolically sized slabs).
  };

  int64_t Capacity; ///< <= 0 means unlimited.
  std::vector<Alloc> Allocs;
  NameMap<int> NameToAlloc;

  /// Plan execution state (null Plan = runtime mode).  Slots is keyed by
  /// a composite slot id: planned slab S, half H -> 2*S + H (flat slabs
  /// only use half 0); names the plan doesn't cover get negative ids.
  const mem::FunPlan *Plan = nullptr;
  std::unordered_map<int, SlotState> Slots;
  NameMap<int> ImplicitSlot; ///< Names the plan doesn't cover.
  int NextImplicitSlot = -1; ///< Implicit slabs grow downwards.
  int64_t HoistedAllocCount = 0;
  int64_t ReusedBlockCount = 0;
  int64_t ImplicitLiveBytes = 0; ///< Live bytes in implicit (unplanned)
  int64_t ImplicitPeakBytes = 0; ///< slots, and their high-water mark.

  /// Runtime-mode arena: offset -> size of free ranges, kept maximal
  /// (adjacent ranges are coalesced on release), plus the bump pointer.
  std::map<int64_t, int64_t> FreeRanges;
  int64_t ArenaTop = 0;

  int64_t LiveBytesNow = 0;
  int64_t PeakBytesSeen = 0;
  int64_t FreedBytesTotal = 0;
  int64_t FreeListHitCount = 0;
  int64_t FreeListReusedBytesTotal = 0;

  void dropRef(int Id);
  void freeRange(int64_t Offset, int64_t Bytes);
  int planSlot(const VName &N, bool &Hoisted);
  void vacate(int Slot);

public:
  explicit DeviceBufferManager(int64_t Capacity) : Capacity(Capacity) {}

  /// Switches to plan-execution mode for one function's plan (null keeps
  /// runtime mode).  Must be called before any allocation.
  void setPlan(const mem::FunPlan *FP) { Plan = FP; }
  bool planMode() const { return Plan != nullptr; }

  /// True when \p Bytes more would still fit.
  bool wouldFit(int64_t Bytes) const {
    return Capacity <= 0 || LiveBytesNow + Bytes <= Capacity;
  }
  int64_t capacity() const { return Capacity; }

  /// Binds \p N to a fresh device allocation of \p Bytes ready at
  /// \p ReadyAt, releasing whatever \p N named before (a loop-body
  /// rebinding).  Returns false when the allocation would exceed capacity
  /// (nothing is changed, including \p N's previous binding).
  bool bind(const VName &N, int64_t Bytes, double ReadyAt);

  /// Makes \p Dst share \p Src's allocation (let-bound aliases); no-op
  /// when \p Src has no allocation.  Any previous binding of \p Dst is
  /// released.
  void alias(const VName &Dst, const VName &Src);

  bool tracked(const VName &N) const { return NameToAlloc.count(N) != 0; }
  bool deviceValid(const VName &N) const;
  /// Ready-time of \p N's device copy; 0 when untracked.
  double readyAt(const VName &N) const;
  /// Updates the ready-time of \p N's device copy (upload completion, or
  /// an on-device transpose rewriting it).
  void setReady(const VName &N, double T);

  /// Marks the device copy invalid (sync-mode readback mirrors the old
  /// model, where a readback released the device allocation) and releases
  /// the bytes.
  void invalidateDevice(const VName &N);

  /// Drops \p N's reference entirely.
  void release(const VName &N);

  /// Releases every tracked name not in \p Keep: the liveness-driven
  /// sweep run at each kernel launch.
  void freeDead(const NameSet &Keep);

  int64_t liveBytes() const { return LiveBytesNow; }
  int64_t peakBytes() const { return PeakBytesSeen; }
  int64_t freedBytes() const { return FreedBytesTotal; }
  int64_t freeListHits() const { return FreeListHitCount; }
  int64_t freeListReusedBytes() const { return FreeListReusedBytesTotal; }
  /// Plan mode: rebinds served by a hoisted double-buffered slab.
  int64_t hoistedAllocs() const { return HoistedAllocCount; }
  /// Plan mode: slab occupancies taken over from a different array.
  int64_t reusedBlocks() const { return ReusedBlockCount; }
  /// Plan mode: the plan-derived residency bound — the sum of every slab
  /// half the run actually materialised, charged at its planned static
  /// extent (widest observed tenant for symbolically sized slabs), plus
  /// the peak of allocations the plan does not cover.  An upper bound on
  /// peakBytes() by construction, and genuinely static for fully
  /// statically shaped programs: it reflects the arena layout, not the
  /// moment-to-moment live counter.  0 in runtime mode.
  int64_t plannedPeakBytes() const;
};

} // namespace gpusim
} // namespace fut

#endif // FUTHARKCC_GPUSIM_BUFFERMANAGER_H
