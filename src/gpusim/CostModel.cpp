//===- CostModel.cpp - Pluggable kernel cycle-cost models -----------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "gpusim/CostModel.h"

#include "gpusim/Device.h"

#include <algorithm>

using namespace fut;
using namespace fut::gpusim;

namespace {

/// Tiled traffic in 128-byte transactions: each staged element is read
/// once per tile (workgroup-wide) from global memory instead of once per
/// thread.  Shared by both models so they charge tiling identically; the
/// expression mirrors the historical inline formula exactly (the byte
/// count carries each element's real width).
double tiledTx(const DeviceParams &P, const CostReport &KCost) {
  return static_cast<double>(KCost.TiledElementBytes) /
         std::max(1, P.tileWidth()) / P.SegmentBytes;
}

/// The paper's closed-form model: launch + max(compute, global, local,
/// private).  The arithmetic below must stay expression-for-expression
/// identical to the formula that used to live inline in Device.cpp —
/// default cost lines are pinned byte-identical by the golden tests.
class RooflineCostModel final : public CostModel {
public:
  const char *name() const override { return "roofline"; }

  double kernelCycles(const DeviceParams &P, const CostReport &KCost,
                      const KernelProfile &) const override {
    double TiledTx = tiledTx(P, KCost);
    double ComputeT = KCost.ComputeOps / P.ComputeOpsPerCycle;
    double MemT = (KCost.GlobalTransactions + TiledTx +
                   KCost.AtomicTransactions + KCost.AtomicConflicts) /
                  P.GlobalTxPerCycle;
    double LocalT = KCost.LocalAccesses / P.LocalAccessesPerCycle;
    double PrivT = KCost.PrivateAccesses / P.PrivateAccessesPerCycle;
    return P.LaunchCycles +
           std::max(std::max(ComputeT, MemT), std::max(LocalT, PrivT));
  }
};

/// The pipeline-level second opinion.  Same counters, four refinements:
///
///  * Occupancy: the device hides latency by switching among resident
///    warps.  With fewer warps than scheduler slots (NumSMs *
///    WarpSchedulerSlots) the issue rate degrades proportionally, so
///    small launches no longer run at the roofline's full throughput.
///  * Divergence: branchy warps issue their divergent tails once per
///    lane (KernelProfile::WarpIssueOps); converged warps issue one slot
///    per instruction for all lanes, which reproduces the roofline's
///    compute term at full occupancy.
///  * Coalescer queue: a warp time-step needing more transactions than
///    the coalescer can queue stalls and drains; the excess is charged on
///    top of the plain transaction count.
///  * Bank conflicts: same-bank scratchpad accesses in one warp step
///    serialise (collected on the local-subhistogram path, where the
///    simulator knows the addressed bins).
///
/// The terms still combine as a bottleneck maximum, but imperfect overlap
/// between pipeline stages leaks a PipelineStageSlack fraction of the
/// non-bottleneck work into the total.
class PipelineCostModel final : public CostModel {
public:
  const char *name() const override { return "pipeline"; }

  double kernelCycles(const DeviceParams &P, const CostReport &KCost,
                      const KernelProfile &Prof) const override {
    int64_t Slots =
        std::max<int64_t>(1, static_cast<int64_t>(P.NumSMs) *
                                 P.WarpSchedulerSlots);
    int64_t Resident = std::min(std::max<int64_t>(1, Prof.Warps), Slots);
    double Occupancy = static_cast<double>(Resident) / Slots;

    // Issue slots are warp-wide: one slot moves WarpSize lanes, so the
    // lane-op throughput scales by occupancy.  Charges made outside any
    // lane window (none today, but the profile does not have to cover
    // every counter) fall back to the roofline's lane-op term.
    double IssuedLaneOps =
        static_cast<double>(Prof.WarpIssueOps) * P.WarpSize;
    IssuedLaneOps = std::max(
        IssuedLaneOps, static_cast<double>(KCost.ComputeOps));
    double ComputeT = IssuedLaneOps / (P.ComputeOpsPerCycle * Occupancy);

    double MemT = (KCost.GlobalTransactions + tiledTx(P, KCost) +
                   KCost.AtomicTransactions + KCost.AtomicConflicts +
                   Prof.CoalescerExcessTx) /
                  P.GlobalTxPerCycle;
    double LocalT = (KCost.LocalAccesses + Prof.BankConflictExtra) /
                    P.LocalAccessesPerCycle;
    double PrivT = KCost.PrivateAccesses / P.PrivateAccessesPerCycle;

    double MaxT = std::max(std::max(ComputeT, MemT), std::max(LocalT, PrivT));
    double SumT = ComputeT + MemT + LocalT + PrivT;
    return P.LaunchCycles + MaxT + P.PipelineStageSlack * (SumT - MaxT);
  }
};

} // namespace

const CostModel &CostModel::roofline() {
  static const RooflineCostModel M;
  return M;
}

const CostModel &CostModel::pipeline() {
  static const PipelineCostModel M;
  return M;
}

const CostModel *CostModel::byName(const std::string &Name) {
  if (Name == "roofline")
    return &roofline();
  if (Name == "pipeline")
    return &pipeline();
  return nullptr;
}
