//===- BufferManager.cpp - Device allocations and liveness --------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "gpusim/BufferManager.h"

#include "ir/Traversal.h"

#include <algorithm>

using namespace fut;
using namespace fut::gpusim;

//===----------------------------------------------------------------------===//
// LivenessInfo
//===----------------------------------------------------------------------===//

LivenessInfo::LivenessInfo(const Program &P) {
  for (const FunDef &F : P.Funs) {
    NameSet Live;
    for (const SubExp &R : F.FBody.Result)
      if (R.isVar())
        Live.insert(R.getVar());
    computeBody(F.FBody, std::move(Live));
  }
}

NameSet LivenessInfo::computeBody(const Body &B, NameSet Live) {
  for (auto It = B.Stms.rbegin(); It != B.Stms.rend(); ++It) {
    const Stm &S = *It;
    LiveAfter[S.E.get()] = Live;

    // Nested bodies may re-execute (loop iterations, one lambda call per
    // element), and their results feed back through merge parameters the
    // analysis cannot name — so inside them, keep everything the body
    // reads or returns live, in addition to the statement's continuation.
    forEachChildBody(*S.E, [&](const Body &Inner) {
      NameSet InnerLive = Live;
      NameSet Free = freeVarsInBody(Inner);
      InnerLive.insert(Free.begin(), Free.end());
      for (const SubExp &R : Inner.Result)
        if (R.isVar())
          InnerLive.insert(R.getVar());
      computeBody(Inner, std::move(InnerLive));
    });

    for (const Param &Prm : S.Pat)
      Live.erase(Prm.Name);
    NameSet Free = freeVarsInExp(*S.E);
    Live.insert(Free.begin(), Free.end());
  }
  return Live;
}

//===----------------------------------------------------------------------===//
// DeviceBufferManager
//===----------------------------------------------------------------------===//

int DeviceBufferManager::slotFor(const VName &N, bool &Hoisted) {
  Hoisted = false;
  if (Plan)
    if (const mem::PlanEntry *E = Plan->lookup(N)) {
      Hoisted = E->Hoisted;
      return E->Slab;
    }
  auto It = ImplicitSlot.find(N);
  if (It != ImplicitSlot.end())
    return It->second;
  int S = NextImplicitSlot--;
  ImplicitSlot[N] = S;
  return S;
}

void DeviceBufferManager::vacate(int Slot) {
  auto It = Slots.find(Slot);
  if (It == Slots.end() || It->second.OccId < 0)
    return;
  int64_t B = Allocs[It->second.OccId].Bytes;
  LiveBytesNow = std::max<int64_t>(0, LiveBytesNow - B);
  FreedBytesTotal += B;
  It->second.OccId = -1;
}

void DeviceBufferManager::freeRange(int64_t Offset, int64_t Bytes) {
  if (Bytes <= 0)
    return;
  auto Next = FreeRanges.lower_bound(Offset);
  if (Next != FreeRanges.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->first + Prev->second == Offset) {
      // Coalesce with the range ending where this one starts — and, when
      // the release plugs a hole exactly, with the following range too.
      Prev->second += Bytes;
      if (Next != FreeRanges.end() &&
          Prev->first + Prev->second == Next->first) {
        Prev->second += Next->second;
        FreeRanges.erase(Next);
      }
      return;
    }
  }
  if (Next != FreeRanges.end() && Offset + Bytes == Next->first) {
    int64_t Merged = Bytes + Next->second;
    FreeRanges.erase(Next);
    FreeRanges[Offset] = Merged;
    return;
  }
  FreeRanges[Offset] = Bytes;
}

void DeviceBufferManager::dropRef(int Id) {
  Alloc &A = Allocs[Id];
  if (--A.Refs > 0)
    return;
  if (A.DeviceValid) {
    if (planMode()) {
      auto It = Slots.find(A.Slot);
      if (It != Slots.end() && It->second.OccId == Id)
        vacate(A.Slot);
    } else {
      LiveBytesNow = std::max<int64_t>(0, LiveBytesNow - A.Bytes);
      FreedBytesTotal += A.Bytes;
      freeRange(A.Offset, A.Bytes);
    }
  }
  A.DeviceValid = false;
}

bool DeviceBufferManager::bind(const VName &N, int64_t Bytes,
                               double ReadyAt) {
  if (planMode()) {
    bool Hoisted = false;
    int Slot = slotFor(N, Hoisted);
    SlotState &SS = Slots[Slot];

    // Capacity pre-check, simulating (without committing) the release of
    // N's previous binding and the eviction of the slab's stale
    // occupant: the plan's whole point is that a reused slab is not
    // double-charged.
    auto Old = NameToAlloc.find(N);
    int OldId = Old != NameToAlloc.end() ? Old->second : -1;
    int64_t Projected = LiveBytesNow + Bytes;
    bool OldVacates = false;
    if (OldId >= 0) {
      const Alloc &OA = Allocs[OldId];
      auto OIt = Slots.find(OA.Slot);
      OldVacates = OA.Refs == 1 && OA.DeviceValid &&
                   OIt != Slots.end() && OIt->second.OccId == OldId;
      if (OldVacates)
        Projected -= OA.Bytes;
    }
    if (SS.OccId >= 0 && !(OldVacates && Allocs[OldId].Slot == Slot))
      Projected -= Allocs[SS.OccId].Bytes;
    if (Capacity > 0 && Projected > Capacity)
      return false;

    if (OldId >= 0) {
      NameToAlloc.erase(Old);
      dropRef(OldId);
    }
    if (SS.OccId >= 0)
      vacate(Slot);
    if (SS.EverUsed) {
      if (Hoisted)
        ++HoistedAllocCount;
      else if (!(SS.LastName == N))
        ++ReusedBlockCount;
    }

    Alloc A;
    A.Bytes = Bytes;
    A.Refs = 1;
    A.DeviceValid = true;
    A.ReadyAt = ReadyAt;
    A.Slot = Slot;
    Allocs.push_back(A);
    int Id = static_cast<int>(Allocs.size()) - 1;
    NameToAlloc[N] = Id;
    SS.OccId = Id;
    SS.EverUsed = true;
    SS.Hoisted = Hoisted;
    SS.LastName = N;
    LiveBytesNow += Bytes;
    PeakBytesSeen = std::max(PeakBytesSeen, LiveBytesNow);
    return true;
  }

  if (Capacity > 0 && LiveBytesNow + Bytes > Capacity)
    return false;
  auto Old = NameToAlloc.find(N);
  if (Old != NameToAlloc.end()) {
    int OldId = Old->second;
    NameToAlloc.erase(Old);
    dropRef(OldId);
  }
  // Serve the allocation from the best-fitting coalesced free range;
  // otherwise bump the arena top.  The simulator's byte accounting is
  // identical either way — the ranges exist so reuse statistics reflect
  // a real allocator's behaviour under fragmentation.
  auto Best = FreeRanges.end();
  for (auto It = FreeRanges.begin(); It != FreeRanges.end(); ++It)
    if (It->second >= Bytes &&
        (Best == FreeRanges.end() || It->second < Best->second))
      Best = It;
  int64_t Off;
  if (Best != FreeRanges.end()) {
    ++FreeListHitCount;
    FreeListReusedBytesTotal += Bytes;
    Off = Best->first;
    int64_t Sz = Best->second;
    FreeRanges.erase(Best);
    if (Sz > Bytes)
      FreeRanges[Off + Bytes] = Sz - Bytes;
  } else {
    Off = ArenaTop;
    ArenaTop += Bytes;
  }
  Alloc A;
  A.Bytes = Bytes;
  A.Refs = 1;
  A.DeviceValid = true;
  A.ReadyAt = ReadyAt;
  A.Offset = Off;
  Allocs.push_back(A);
  NameToAlloc[N] = static_cast<int>(Allocs.size()) - 1;
  LiveBytesNow += Bytes;
  PeakBytesSeen = std::max(PeakBytesSeen, LiveBytesNow);
  return true;
}

void DeviceBufferManager::alias(const VName &Dst, const VName &Src) {
  auto It = NameToAlloc.find(Src);
  if (It == NameToAlloc.end())
    return;
  int Id = It->second;
  auto Old = NameToAlloc.find(Dst);
  if (Old != NameToAlloc.end()) {
    if (Old->second == Id)
      return;
    int OldId = Old->second;
    NameToAlloc.erase(Old);
    dropRef(OldId);
  }
  ++Allocs[Id].Refs;
  NameToAlloc[Dst] = Id;
}

bool DeviceBufferManager::deviceValid(const VName &N) const {
  auto It = NameToAlloc.find(N);
  return It != NameToAlloc.end() && Allocs[It->second].DeviceValid;
}

double DeviceBufferManager::readyAt(const VName &N) const {
  auto It = NameToAlloc.find(N);
  return It == NameToAlloc.end() ? 0 : Allocs[It->second].ReadyAt;
}

void DeviceBufferManager::setReady(const VName &N, double T) {
  auto It = NameToAlloc.find(N);
  if (It != NameToAlloc.end())
    Allocs[It->second].ReadyAt = T;
}

void DeviceBufferManager::invalidateDevice(const VName &N) {
  auto It = NameToAlloc.find(N);
  if (It == NameToAlloc.end())
    return;
  Alloc &A = Allocs[It->second];
  if (!A.DeviceValid)
    return;
  if (planMode()) {
    auto SIt = Slots.find(A.Slot);
    if (SIt != Slots.end() && SIt->second.OccId == It->second)
      vacate(A.Slot);
  } else {
    LiveBytesNow = std::max<int64_t>(0, LiveBytesNow - A.Bytes);
    FreedBytesTotal += A.Bytes;
    freeRange(A.Offset, A.Bytes);
  }
  A.DeviceValid = false;
}

void DeviceBufferManager::release(const VName &N) {
  auto It = NameToAlloc.find(N);
  if (It == NameToAlloc.end())
    return;
  int Id = It->second;
  NameToAlloc.erase(It);
  dropRef(Id);
}

void DeviceBufferManager::freeDead(const NameSet &Keep) {
  std::vector<VName> Dead;
  for (const auto &[Name, Id] : NameToAlloc)
    if (!Keep.count(Name))
      Dead.push_back(Name);
  for (const VName &N : Dead)
    release(N);
}
