//===- BufferManager.cpp - Device allocations and liveness --------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "gpusim/BufferManager.h"

#include "ir/Traversal.h"

#include <algorithm>

using namespace fut;
using namespace fut::gpusim;

//===----------------------------------------------------------------------===//
// LivenessInfo
//===----------------------------------------------------------------------===//

LivenessInfo::LivenessInfo(const Program &P) {
  for (const FunDef &F : P.Funs) {
    NameSet Live;
    for (const SubExp &R : F.FBody.Result)
      if (R.isVar())
        Live.insert(R.getVar());
    computeBody(F.FBody, std::move(Live));
  }
}

NameSet LivenessInfo::computeBody(const Body &B, NameSet Live) {
  for (auto It = B.Stms.rbegin(); It != B.Stms.rend(); ++It) {
    const Stm &S = *It;
    LiveAfter[S.E.get()] = Live;

    // Nested bodies may re-execute (loop iterations, one lambda call per
    // element), and their results feed back through merge parameters the
    // analysis cannot name — so inside them, keep everything the body
    // reads or returns live, in addition to the statement's continuation.
    forEachChildBody(*S.E, [&](const Body &Inner) {
      NameSet InnerLive = Live;
      NameSet Free = freeVarsInBody(Inner);
      InnerLive.insert(Free.begin(), Free.end());
      for (const SubExp &R : Inner.Result)
        if (R.isVar())
          InnerLive.insert(R.getVar());
      computeBody(Inner, std::move(InnerLive));
    });

    for (const Param &Prm : S.Pat)
      Live.erase(Prm.Name);
    NameSet Free = freeVarsInExp(*S.E);
    Live.insert(Free.begin(), Free.end());
  }
  return Live;
}

//===----------------------------------------------------------------------===//
// DeviceBufferManager
//===----------------------------------------------------------------------===//

void DeviceBufferManager::dropRef(int Id) {
  Alloc &A = Allocs[Id];
  if (--A.Refs > 0)
    return;
  if (A.DeviceValid) {
    LiveBytesNow = std::max<int64_t>(0, LiveBytesNow - A.Bytes);
    FreedBytesTotal += A.Bytes;
    FreeList.insert(A.Bytes);
  }
  A.DeviceValid = false;
}

bool DeviceBufferManager::bind(const VName &N, int64_t Bytes,
                               double ReadyAt) {
  if (Capacity > 0 && LiveBytesNow + Bytes > Capacity)
    return false;
  auto Old = NameToAlloc.find(N);
  if (Old != NameToAlloc.end()) {
    int OldId = Old->second;
    NameToAlloc.erase(Old);
    dropRef(OldId);
  }
  // Serve the allocation from the free-list when a released block is big
  // enough (best fit); purely statistical — the simulator does not model
  // fragmentation, so bytes accounting is identical either way.
  auto Blk = FreeList.lower_bound(Bytes);
  if (Blk != FreeList.end()) {
    ++FreeListHitCount;
    FreeListReusedBytesTotal += Bytes;
    FreeList.erase(Blk);
  }
  Alloc A;
  A.Bytes = Bytes;
  A.Refs = 1;
  A.DeviceValid = true;
  A.ReadyAt = ReadyAt;
  Allocs.push_back(A);
  NameToAlloc[N] = static_cast<int>(Allocs.size()) - 1;
  LiveBytesNow += Bytes;
  PeakBytesSeen = std::max(PeakBytesSeen, LiveBytesNow);
  return true;
}

void DeviceBufferManager::alias(const VName &Dst, const VName &Src) {
  auto It = NameToAlloc.find(Src);
  if (It == NameToAlloc.end())
    return;
  int Id = It->second;
  auto Old = NameToAlloc.find(Dst);
  if (Old != NameToAlloc.end()) {
    if (Old->second == Id)
      return;
    int OldId = Old->second;
    NameToAlloc.erase(Old);
    dropRef(OldId);
  }
  ++Allocs[Id].Refs;
  NameToAlloc[Dst] = Id;
}

bool DeviceBufferManager::deviceValid(const VName &N) const {
  auto It = NameToAlloc.find(N);
  return It != NameToAlloc.end() && Allocs[It->second].DeviceValid;
}

double DeviceBufferManager::readyAt(const VName &N) const {
  auto It = NameToAlloc.find(N);
  return It == NameToAlloc.end() ? 0 : Allocs[It->second].ReadyAt;
}

void DeviceBufferManager::setReady(const VName &N, double T) {
  auto It = NameToAlloc.find(N);
  if (It != NameToAlloc.end())
    Allocs[It->second].ReadyAt = T;
}

void DeviceBufferManager::invalidateDevice(const VName &N) {
  auto It = NameToAlloc.find(N);
  if (It == NameToAlloc.end())
    return;
  Alloc &A = Allocs[It->second];
  if (!A.DeviceValid)
    return;
  LiveBytesNow = std::max<int64_t>(0, LiveBytesNow - A.Bytes);
  FreedBytesTotal += A.Bytes;
  FreeList.insert(A.Bytes);
  A.DeviceValid = false;
}

void DeviceBufferManager::release(const VName &N) {
  auto It = NameToAlloc.find(N);
  if (It == NameToAlloc.end())
    return;
  int Id = It->second;
  NameToAlloc.erase(It);
  dropRef(Id);
}

void DeviceBufferManager::freeDead(const NameSet &Keep) {
  std::vector<VName> Dead;
  for (const auto &[Name, Id] : NameToAlloc)
    if (!Keep.count(Name))
      Dead.push_back(Name);
  for (const VName &N : Dead)
    release(N);
}
