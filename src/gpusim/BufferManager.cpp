//===- BufferManager.cpp - Device allocations and liveness --------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "gpusim/BufferManager.h"

#include "ir/Traversal.h"

#include <algorithm>

using namespace fut;
using namespace fut::gpusim;

//===----------------------------------------------------------------------===//
// LivenessInfo
//===----------------------------------------------------------------------===//

LivenessInfo::LivenessInfo(const Program &P) {
  for (const FunDef &F : P.Funs) {
    NameSet Live;
    for (const SubExp &R : F.FBody.Result)
      if (R.isVar())
        Live.insert(R.getVar());
    computeBody(F.FBody, std::move(Live));
  }
}

NameSet LivenessInfo::computeBody(const Body &B, NameSet Live) {
  for (auto It = B.Stms.rbegin(); It != B.Stms.rend(); ++It) {
    const Stm &S = *It;
    LiveAfter[S.E.get()] = Live;

    // Nested bodies may re-execute (loop iterations, one lambda call per
    // element), and their results feed back through merge parameters the
    // analysis cannot name — so inside them, keep everything the body
    // reads or returns live, in addition to the statement's continuation.
    forEachChildBody(*S.E, [&](const Body &Inner) {
      NameSet InnerLive = Live;
      NameSet Free = freeVarsInBody(Inner);
      InnerLive.insert(Free.begin(), Free.end());
      for (const SubExp &R : Inner.Result)
        if (R.isVar())
          InnerLive.insert(R.getVar());
      computeBody(Inner, std::move(InnerLive));
    });

    for (const Param &Prm : S.Pat)
      Live.erase(Prm.Name);
    NameSet Free = freeVarsInExp(*S.E);
    Live.insert(Free.begin(), Free.end());
  }
  return Live;
}

//===----------------------------------------------------------------------===//
// DeviceBufferManager
//===----------------------------------------------------------------------===//

/// Composite occupancy key: slab \p Slab, double-buffer half \p Half.
/// Plan slab ids are non-negative, so keys never collide with the
/// negative implicit-slot ids.
static int slotKey(int Slab, int Half) { return Slab * 2 + Half; }

int DeviceBufferManager::planSlot(const VName &N, bool &Hoisted) {
  Hoisted = false;
  const mem::PlanEntry *E = Plan ? Plan->lookup(N) : nullptr;
  if (!E) {
    auto It = ImplicitSlot.find(N);
    if (It != ImplicitSlot.end())
      return It->second;
    int S = NextImplicitSlot--;
    ImplicitSlot[N] = S;
    return S;
  }
  Hoisted = E->Hoisted;
  if (!E->Hoisted)
    return slotKey(E->Slab, 0);

  // A hoisted slab holds two concurrently charged tenants, one per half.
  // The static plan fixes the merge parameter in half 1, but at runtime
  // the carried value is simply the previous generation of a half-0 name,
  // so the half a bind lands in is resolved dynamically:
  int K0 = slotKey(E->Slab, 0), K1 = slotKey(E->Slab, 1);
  auto Occupant = [&](int K) {
    auto It = Slots.find(K);
    return It == Slots.end() ? -1 : It->second.OccId;
  };
  // A consumer takes over the half holding the block it updates in place.
  if (E->HasAlias) {
    auto SIt = NameToAlloc.find(E->AliasOf);
    if (SIt != NameToAlloc.end()) {
      if (Occupant(K0) == SIt->second)
        return K0;
      if (Occupant(K1) == SIt->second)
        return K1;
    }
  }
  // Rebinding a name that still holds a half releases in place — the
  // same release-then-alloc a rebind performs in runtime mode.
  auto NIt = NameToAlloc.find(N);
  if (NIt != NameToAlloc.end()) {
    if (Occupant(K0) == NIt->second)
      return K0;
    if (Occupant(K1) == NIt->second)
      return K1;
  }
  // A fresh generation is written opposite the occupied half, keeping the
  // carried value charged while the kernel reads it — the double-buffer
  // flip the slab was sized 2x for.
  bool Occ0 = Occupant(K0) >= 0, Occ1 = Occupant(K1) >= 0;
  if (Occ0 != Occ1)
    return Occ0 ? K1 : K0;
  return slotKey(E->Slab, E->BufferIndex ? 1 : 0);
}

void DeviceBufferManager::vacate(int Slot) {
  auto It = Slots.find(Slot);
  if (It == Slots.end() || It->second.OccId < 0)
    return;
  int64_t B = Allocs[It->second.OccId].Bytes;
  LiveBytesNow = std::max<int64_t>(0, LiveBytesNow - B);
  if (Slot < 0)
    ImplicitLiveBytes = std::max<int64_t>(0, ImplicitLiveBytes - B);
  FreedBytesTotal += B;
  It->second.OccId = -1;
}

void DeviceBufferManager::freeRange(int64_t Offset, int64_t Bytes) {
  if (Bytes <= 0)
    return;
  auto Next = FreeRanges.lower_bound(Offset);
  if (Next != FreeRanges.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->first + Prev->second == Offset) {
      // Coalesce with the range ending where this one starts — and, when
      // the release plugs a hole exactly, with the following range too.
      Prev->second += Bytes;
      if (Next != FreeRanges.end() &&
          Prev->first + Prev->second == Next->first) {
        Prev->second += Next->second;
        FreeRanges.erase(Next);
      }
      return;
    }
  }
  if (Next != FreeRanges.end() && Offset + Bytes == Next->first) {
    int64_t Merged = Bytes + Next->second;
    FreeRanges.erase(Next);
    FreeRanges[Offset] = Merged;
    return;
  }
  FreeRanges[Offset] = Bytes;
}

void DeviceBufferManager::dropRef(int Id) {
  Alloc &A = Allocs[Id];
  if (--A.Refs > 0)
    return;
  if (A.DeviceValid) {
    if (planMode()) {
      auto It = Slots.find(A.Slot);
      if (It != Slots.end() && It->second.OccId == Id)
        vacate(A.Slot);
    } else {
      LiveBytesNow = std::max<int64_t>(0, LiveBytesNow - A.Bytes);
      FreedBytesTotal += A.Bytes;
      freeRange(A.Offset, A.Bytes);
    }
  }
  A.DeviceValid = false;
}

bool DeviceBufferManager::bind(const VName &N, int64_t Bytes,
                               double ReadyAt) {
  if (planMode()) {
    bool Hoisted = false;
    int Slot = planSlot(N, Hoisted);
    SlotState &SS = Slots[Slot];

    // Capacity pre-check, simulating (without committing) the release of
    // N's previous binding and the eviction of this half's stale
    // occupant: the plan's whole point is that reused storage is not
    // double-charged — while a hoisted slab's other half stays charged.
    auto Old = NameToAlloc.find(N);
    int OldId = Old != NameToAlloc.end() ? Old->second : -1;
    int64_t Projected = LiveBytesNow + Bytes;
    bool OldVacates = false;
    if (OldId >= 0) {
      const Alloc &OA = Allocs[OldId];
      auto OIt = Slots.find(OA.Slot);
      OldVacates = OA.Refs == 1 && OA.DeviceValid &&
                   OIt != Slots.end() && OIt->second.OccId == OldId;
      if (OldVacates)
        Projected -= OA.Bytes;
    }
    if (SS.OccId >= 0 && !(OldVacates && Allocs[OldId].Slot == Slot))
      Projected -= Allocs[SS.OccId].Bytes;
    if (Capacity > 0 && Projected > Capacity)
      return false;

    if (OldId >= 0) {
      NameToAlloc.erase(Old);
      dropRef(OldId);
    }
    if (SS.OccId >= 0)
      vacate(Slot);
    if (SS.EverUsed) {
      if (Hoisted)
        ++HoistedAllocCount;
      else if (!(SS.LastName == N))
        ++ReusedBlockCount;
    }

    Alloc A;
    A.Bytes = Bytes;
    A.Refs = 1;
    A.DeviceValid = true;
    A.ReadyAt = ReadyAt;
    A.Slot = Slot;
    Allocs.push_back(A);
    int Id = static_cast<int>(Allocs.size()) - 1;
    NameToAlloc[N] = Id;
    SS.OccId = Id;
    SS.EverUsed = true;
    SS.Hoisted = Hoisted;
    SS.LastName = N;
    SS.MaxBytes = std::max(SS.MaxBytes, Bytes);
    LiveBytesNow += Bytes;
    if (Slot < 0) {
      ImplicitLiveBytes += Bytes;
      ImplicitPeakBytes = std::max(ImplicitPeakBytes, ImplicitLiveBytes);
    }
    PeakBytesSeen = std::max(PeakBytesSeen, LiveBytesNow);
    return true;
  }

  if (Capacity > 0 && LiveBytesNow + Bytes > Capacity)
    return false;
  auto Old = NameToAlloc.find(N);
  if (Old != NameToAlloc.end()) {
    int OldId = Old->second;
    NameToAlloc.erase(Old);
    dropRef(OldId);
  }
  // Serve the allocation from the best-fitting coalesced free range;
  // otherwise bump the arena top.  The simulator's byte accounting is
  // identical either way — the ranges exist so reuse statistics reflect
  // a real allocator's behaviour under fragmentation.
  auto Best = FreeRanges.end();
  for (auto It = FreeRanges.begin(); It != FreeRanges.end(); ++It)
    if (It->second >= Bytes &&
        (Best == FreeRanges.end() || It->second < Best->second))
      Best = It;
  int64_t Off;
  if (Best != FreeRanges.end()) {
    ++FreeListHitCount;
    FreeListReusedBytesTotal += Bytes;
    Off = Best->first;
    int64_t Sz = Best->second;
    FreeRanges.erase(Best);
    if (Sz > Bytes)
      FreeRanges[Off + Bytes] = Sz - Bytes;
  } else {
    Off = ArenaTop;
    ArenaTop += Bytes;
  }
  Alloc A;
  A.Bytes = Bytes;
  A.Refs = 1;
  A.DeviceValid = true;
  A.ReadyAt = ReadyAt;
  A.Offset = Off;
  Allocs.push_back(A);
  NameToAlloc[N] = static_cast<int>(Allocs.size()) - 1;
  LiveBytesNow += Bytes;
  PeakBytesSeen = std::max(PeakBytesSeen, LiveBytesNow);
  return true;
}

int64_t DeviceBufferManager::plannedPeakBytes() const {
  if (!Plan)
    return 0;
  // Every slab half the run materialised is charged at its planned
  // extent: the slab's static per-half size when the plan knows it, the
  // widest observed tenant when the size is symbolic.  Allocations the
  // plan does not cover contribute their own high-water mark.
  int64_t Total = ImplicitPeakBytes;
  for (const mem::SlabInfo &SI : Plan->Slabs) {
    int Halves = SI.Hoisted ? 2 : 1;
    int64_t PerHalf = SI.Bytes < 0 ? -1 : SI.Bytes / Halves;
    for (int H = 0; H < Halves; ++H) {
      auto It = Slots.find(slotKey(SI.Id, H));
      if (It == Slots.end() || !It->second.EverUsed)
        continue;
      // max() keeps the bound sound even if a tenant outgrew the planned
      // extent (a symbolic member the planner sized statically).
      Total += std::max(PerHalf, It->second.MaxBytes);
    }
  }
  return Total;
}

void DeviceBufferManager::alias(const VName &Dst, const VName &Src) {
  auto It = NameToAlloc.find(Src);
  if (It == NameToAlloc.end())
    return;
  int Id = It->second;
  auto Old = NameToAlloc.find(Dst);
  if (Old != NameToAlloc.end()) {
    if (Old->second == Id)
      return;
    int OldId = Old->second;
    NameToAlloc.erase(Old);
    dropRef(OldId);
  }
  ++Allocs[Id].Refs;
  NameToAlloc[Dst] = Id;
}

bool DeviceBufferManager::deviceValid(const VName &N) const {
  auto It = NameToAlloc.find(N);
  return It != NameToAlloc.end() && Allocs[It->second].DeviceValid;
}

double DeviceBufferManager::readyAt(const VName &N) const {
  auto It = NameToAlloc.find(N);
  return It == NameToAlloc.end() ? 0 : Allocs[It->second].ReadyAt;
}

void DeviceBufferManager::setReady(const VName &N, double T) {
  auto It = NameToAlloc.find(N);
  if (It != NameToAlloc.end())
    Allocs[It->second].ReadyAt = T;
}

void DeviceBufferManager::invalidateDevice(const VName &N) {
  auto It = NameToAlloc.find(N);
  if (It == NameToAlloc.end())
    return;
  Alloc &A = Allocs[It->second];
  if (!A.DeviceValid)
    return;
  if (planMode()) {
    auto SIt = Slots.find(A.Slot);
    if (SIt != Slots.end() && SIt->second.OccId == It->second)
      vacate(A.Slot);
  } else {
    LiveBytesNow = std::max<int64_t>(0, LiveBytesNow - A.Bytes);
    FreedBytesTotal += A.Bytes;
    freeRange(A.Offset, A.Bytes);
  }
  A.DeviceValid = false;
}

void DeviceBufferManager::release(const VName &N) {
  auto It = NameToAlloc.find(N);
  if (It == NameToAlloc.end())
    return;
  int Id = It->second;
  NameToAlloc.erase(It);
  dropRef(Id);
}

void DeviceBufferManager::freeDead(const NameSet &Keep) {
  std::vector<VName> Dead;
  for (const auto &[Name, Id] : NameToAlloc)
    if (!Keep.count(Name))
      Dead.push_back(Name);
  for (const VName &N : Dead)
    release(N);
}
