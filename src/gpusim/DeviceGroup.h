//===- DeviceGroup.h - N-device timeline group ------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A group of N simulated devices, each with its own two-engine
/// EngineTimeline, driven by one logical host.  Device 0 is the primary
/// device: unsharded work, host ops and single-device transfers all run on
/// its timeline, so a group of size 1 behaves bit-for-bit like the plain
/// single-device model.  Sharded kernel launches and block/broadcast
/// transfers fan out over all timelines; the group's makespan is the max
/// over the per-device makespans, and busy counters are summed.
///
/// Host-clock discipline: the logical host is the max of the per-timeline
/// host clocks.  syncHostClocks() propagates it to every device before a
/// fan-out (so no device launches work the host has not issued yet) and
/// after a blocking multi-device download (so the host is past every
/// device's readback).
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_GPUSIM_DEVICEGROUP_H
#define FUTHARKCC_GPUSIM_DEVICEGROUP_H

#include "gpusim/Timeline.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace fut {
namespace gpusim {

class DeviceGroup {
  std::vector<EngineTimeline> TLs;
  std::vector<int64_t> PeakBytes; ///< Per-device peak kernel working set.

public:
  explicit DeviceGroup(int N)
      : TLs(std::max(1, N)), PeakBytes(std::max(1, N), 0) {}

  int size() const { return static_cast<int>(TLs.size()); }
  EngineTimeline &dev(int D) { return TLs[D]; }
  const EngineTimeline &dev(int D) const { return TLs[D]; }

  /// The logical host time: the furthest any timeline's host clock has
  /// advanced.
  double hostTime() const {
    double H = 0;
    for (const EngineTimeline &T : TLs)
      H = std::max(H, T.hostClock());
    return H;
  }

  /// Propagates the logical host time to every device.  Called before
  /// fanning work out and after any device's blocking download.
  void syncHostClocks() {
    double H = hostTime();
    for (EngineTimeline &T : TLs)
      T.syncHost(H);
  }

  /// Serialises the whole group: every engine on every device drains to
  /// the group makespan, then spins for \p Cycles (retry backoff).
  void barrierAll(double Cycles) {
    double M = makespan();
    for (EngineTimeline &T : TLs) {
      T.syncHost(M);
      T.barrier(Cycles);
    }
  }

  /// Records one sharded launch's working set on device \p D (input
  /// blocks or broadcast copies plus the output block).
  void noteWorkingSet(int D, int64_t Bytes) {
    PeakBytes[D] = std::max(PeakBytes[D], Bytes);
  }
  const std::vector<int64_t> &peakBytes() const { return PeakBytes; }

  double makespan() const {
    double M = 0;
    for (const EngineTimeline &T : TLs)
      M = std::max(M, T.makespan());
    return M;
  }

  double copyBusy() const {
    double S = 0;
    for (const EngineTimeline &T : TLs)
      S += T.copyBusy();
    return S;
  }

  double computeBusy() const {
    double S = 0;
    for (const EngineTimeline &T : TLs)
      S += T.computeBusy();
    return S;
  }
};

} // namespace gpusim
} // namespace fut

#endif // FUTHARKCC_GPUSIM_DEVICEGROUP_H
