//===- CostModel.h - Pluggable kernel cycle-cost models ---------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel costing behind an interface.  Every kernel launch is simulated
/// functionally by KernelSim regardless of the model — the transaction and
/// operation counters (CostReport) and the warp-level execution profile
/// (KernelProfile) are model-independent facts about the launch.  A
/// CostModel only converts those facts into a cycle estimate:
///
///  * RooflineCostModel — the paper's closed-form model, and the default:
///      launch + max(compute, global, local, private),
///    each term being total work over the corresponding throughput.  Its
///    arithmetic reproduces the historical inline formula expression by
///    expression, so default cost lines are byte-identical to the
///    pre-refactor simulator.
///
///  * PipelineCostModel — a scoped pipeline-level second opinion that
///    replays the same counters through per-SM warp-scheduler occupancy,
///    divergence serialisation on branchy warps, a bounded memory
///    coalescer queue, and local-memory bank conflicts.  It exists to
///    bound the closed-form model's error (EXPERIMENTS E16) and to serve
///    as an alternative autotuning oracle; outputs and the
///    model-independent counters are identical under either model by
///    construction.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_GPUSIM_COSTMODEL_H
#define FUTHARKCC_GPUSIM_COSTMODEL_H

#include <cstdint>
#include <string>

namespace fut {
namespace gpusim {

struct DeviceParams;
struct CostReport;

/// Warp-level execution profile of one kernel launch, collected by
/// KernelSim as warps retire.  Everything here is a fact about the
/// simulated execution (not a costing decision), so it is gathered
/// unconditionally and both models see the same profile.
struct KernelProfile {
  /// Warps the launch retired (every partial trailing warp counts).
  int64_t Warps = 0;
  /// Total scalar operations across all lanes (the per-warp sum of
  /// per-lane op counts; matches CostReport::ComputeOps up to charges
  /// made outside any lane window).
  int64_t LaneOps = 0;
  /// Warp-instruction slots after divergence serialisation: a warp whose
  /// lanes executed op counts o_1..o_L issues
  ///   min_i(o_i) + sum_i(o_i - min_i(o_i))
  /// slots — the converged prefix issues once for the whole warp, the
  /// divergent remainder serialises per lane.  Uniform warps issue
  /// exactly max_i(o_i).
  int64_t WarpIssueOps = 0;
  /// Warps whose lanes executed differing op counts (control divergence).
  int64_t DivergentWarps = 0;
  /// Warp memory time-steps merged (one per simultaneous access round).
  int64_t MemSteps = 0;
  /// Transactions beyond the coalescer queue depth in a single warp
  /// time-step; the coalescer stalls the pipeline to drain them.
  int64_t CoalescerExcessTx = 0;
  /// Extra serialised scratchpad cycles from local-memory bank conflicts
  /// (lanes of one warp hitting the same bank in one step).
  int64_t BankConflictExtra = 0;

  void add(const KernelProfile &O) {
    Warps += O.Warps;
    LaneOps += O.LaneOps;
    WarpIssueOps += O.WarpIssueOps;
    DivergentWarps += O.DivergentWarps;
    MemSteps += O.MemSteps;
    CoalescerExcessTx += O.CoalescerExcessTx;
    BankConflictExtra += O.BankConflictExtra;
  }
};

/// Converts one launch's model-independent counters into simulated cycles.
/// Implementations must be pure functions of their arguments: the same
/// launch always costs the same, which is what makes simulated cycles a
/// deterministic autotuning oracle.
class CostModel {
public:
  virtual ~CostModel() = default;

  virtual const char *name() const = 0;

  /// Cycles for one kernel launch, including the launch overhead.
  /// \p KCost carries this launch's counters only (not the run total).
  virtual double kernelCycles(const DeviceParams &P, const CostReport &KCost,
                              const KernelProfile &Prof) const = 0;

  /// The closed-form default (byte-identical cost lines to the
  /// pre-interface simulator).
  static const CostModel &roofline();
  /// The pipeline-level second opinion.
  static const CostModel &pipeline();
  /// Looks a model up by its --cost-model name; nullptr when unknown.
  static const CostModel *byName(const std::string &Name);
};

} // namespace gpusim
} // namespace fut

#endif // FUTHARKCC_GPUSIM_COSTMODEL_H
