//===- Device.h - Cycle-approximate GPU simulator ---------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware substrate substituting for the paper's OpenCL devices.  A
/// Device executes a flattened program: host code runs on a simulated CPU
/// (slow, serial, with explicit host<->device transfers), and KernelExps
/// run on a simulated GPU with
///
///  * a warp-based global-memory model: a warp's simultaneous accesses
///    that fall into the same 128-byte segment cost one transaction
///    (coalescing); scattered accesses cost one transaction per lane,
///  * workgroup-local scratchpad memory for tiled inputs (Section 5.2),
///  * per-thread private memory for in-thread arrays (so the footprint
///    effects of Fig 10's stream sequentialisation are visible),
///  * kernel-launch overhead, and
///  * a roofline timing model: a kernel takes
///      launch + max(compute, global, local, private) cycles,
///    each term being total work divided by the corresponding throughput.
///
/// All reported numbers are simulated cycles; two device configurations
/// ("gtx780" and "w8100") mirror the relative properties the paper's
/// evaluation depends on (the AMD part has higher launch overhead, which
/// is why NN speeds up less there).
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_GPUSIM_DEVICE_H
#define FUTHARKCC_GPUSIM_DEVICE_H

#include "gpusim/Faults.h"
#include "interp/Interp.h"
#include "ir/IR.h"
#include "mem/MemPlan.h"
#include "shard/ShardPlan.h"
#include "support/Error.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace fut {
namespace gpusim {

struct DeviceParams {
  std::string Name = "gtx780";

  int WarpSize = 32;
  int WorkgroupSize = 256;
  int64_t SegmentBytes = 128;

  double LaunchCycles = 5000;

  /// Throughputs, in units per cycle across the whole device.
  double ComputeOpsPerCycle = 2048; // scalar IR operations
  double GlobalTxPerCycle = 2.5;    // 128-byte transactions
  double LocalAccessesPerCycle = 4096;
  double PrivateAccessesPerCycle = 8192;

  /// Per-thread arrays larger than this spill out of registers/private
  /// memory into (scattered) global memory — the reason sequentialising
  /// large inner parallelism in-thread is expensive and the map-loop
  /// interchange (G7) is essential for LocVolCalib.
  int64_t PrivateSpillElems = 64;

  /// SegHist lowering switch: histograms at most this wide keep one
  /// subhistogram per workgroup in local memory (atomic updates are
  /// scratchpad accesses; one coalesced global merge per workgroup at the
  /// end); wider histograms fall back to global-memory atomics, whose
  /// cost grows with same-segment conflicts inside a warp.
  int64_t HistLocalWidthMax = 4096;

  /// Which cost model converts a launch's counters into cycles
  /// (CostModel.h): "roofline" (the closed-form default, cost lines
  /// byte-identical to the pre-interface simulator) or "pipeline" (the
  /// warp-scheduler/divergence/coalescer/bank-conflict second opinion).
  /// Functional results and the model-independent counters are identical
  /// under every model; only cycle estimates differ.  An unknown name is
  /// a Config error at run entry.
  std::string CostModelName = "roofline";

  /// Pipeline-model scope (ignored by the roofline model): streaming
  /// multiprocessors and concurrently schedulable warp slots per SM —
  /// their product bounds how many warps can hide each other's latency.
  int NumSMs = 15;          // GTX 780 Ti: 15 SMX
  int WarpSchedulerSlots = 4;
  /// Transactions one warp time-step can hold in the memory coalescer
  /// before the pipeline stalls to drain the queue.
  int64_t CoalescerQueueDepth = 8;
  /// Scratchpad banks; lanes of a warp hitting the same bank in one step
  /// serialise (local-subhistogram updates are the tracked case).
  int LocalMemBanks = 32;
  /// Fraction of non-bottleneck pipeline work that leaks past the
  /// bottleneck term (imperfect stage overlap).
  double PipelineStageSlack = 0.05;

  /// Elements a workgroup stages per tile: tiled global traffic is
  /// charged once per tile of this width instead of once per thread.
  /// 0 (the default) means the tile spans the workgroup, reproducing the
  /// historical formula exactly; the autotuner searches it separately so
  /// tile amortisation can be tuned without touching the launch shape.
  int TileWidth = 0;

  /// The effective tile width used by the cost models' tiled-traffic
  /// amortisation.
  int tileWidth() const { return TileWidth > 0 ? TileWidth : WorkgroupSize; }

  /// Host model: serial, HostCyclesPerOp per IR step.
  double HostCyclesPerOp = 8;
  /// Host <-> device transfer rate (PCIe-like).
  double TransferBytesPerCycle = 8;

  /// Device memory capacity in bytes; 0 means unlimited.  Kernel inputs
  /// and outputs are accounted against this while device-resident, and an
  /// allocation that would exceed it fails with a DeviceOOM runtime error.
  int64_t DeviceMemBytes = 3LL << 30; // 3 GiB, like the GTX 780 Ti

  /// Bytes of DeviceMemBytes already reserved by co-resident tenants on a
  /// shared device (the serving layer's admission controller packs tenants
  /// by their plan-derived PlannedPeakBytes bound).  This run's capacity
  /// checks see DeviceMemBytes - ReservedBytes, so a tenant that outgrows
  /// its reservation OOMs in its own sandbox instead of starving the
  /// others.  Ignored when DeviceMemBytes is 0 (unlimited).
  int64_t ReservedBytes = 0;

  /// Effective capacity visible to this run; 0 means unlimited.  The
  /// 1-byte floor is a backstop only: an over-reservation (ReservedBytes
  /// >= DeviceMemBytes) is rejected by validate() before any launch, so
  /// runs never silently execute against a pathological 1-byte device.
  int64_t effectiveMemBytes() const {
    if (DeviceMemBytes <= 0)
      return 0;
    return std::max<int64_t>(1, DeviceMemBytes - ReservedBytes);
  }

  /// Rejects inconsistent configurations with a typed Config error before
  /// anything launches: a reservation that leaves no capacity (or a
  /// negative one that would mint capacity), an unknown cost model, or a
  /// negative tile width.  Device::run and the serving layer's admission
  /// path both call this, so a tenant packed against a misconfigured
  /// reservation fails loudly instead of OOMing against one byte.
  MaybeError validate() const {
    if (DeviceMemBytes > 0 && ReservedBytes >= DeviceMemBytes)
      return CompilerError::config(
          "device over-reserved: " + std::to_string(ReservedBytes) +
          " bytes reserved of " + std::to_string(DeviceMemBytes) +
          " capacity leaves no memory for this run");
    if (ReservedBytes < 0)
      return CompilerError::config(
          "negative device reservation: " + std::to_string(ReservedBytes) +
          " bytes");
    if (!costModelNameKnown())
      return CompilerError::config("unknown cost model \"" + CostModelName +
                                   "\" (expected roofline or pipeline)");
    if (TileWidth < 0)
      return CompilerError::config("negative tile width: " +
                                   std::to_string(TileWidth));
    return MaybeError::success();
  }

private:
  /// Out-of-line so Device.h does not depend on CostModel.h.
  bool costModelNameKnown() const;

public:

  /// Watchdog budgets in simulated cycles; 0 disables the check.  A single
  /// kernel exceeding WatchdogKernelCycles, or a whole run exceeding
  /// WatchdogTotalCycles, is killed deterministically with a Watchdog
  /// runtime error.  In asynchronous mode the run-level budget is checked
  /// against the two-engine makespan.
  double WatchdogKernelCycles = 0;
  double WatchdogTotalCycles = 0;

  /// When true (the default), TotalCycles is the dependency-respecting
  /// makespan of a copy engine and a compute engine fed by in-order queues
  /// (see Timeline.h): independent transfers overlap kernels, and
  /// back-to-back kernels pipeline part of LaunchCycles.  When false (the
  /// --sync ablation), the pre-async serial model is reproduced exactly:
  /// TotalCycles = KernelCycles + HostCycles + TransferCycles +
  /// RetryCycles, and a host readback invalidates the device copy.
  bool AsyncTimeline = true;

  /// Fraction of LaunchCycles that pipelines behind a busy engine or a
  /// pending dependency when kernels are enqueued back-to-back; a kernel
  /// issued to an idle device still pays the full launch cost.
  double PipelinedLaunchFraction = 0.5;

  /// When true (the default), device allocation executes the compiler's
  /// static memory plan (mem/MemPlan.h): every kernel input/output lives
  /// at its planned slab, consumed arrays alias their source's block, and
  /// loop-carried arrays occupy hoisted double-buffered slabs.  When
  /// false (the --no-mem-plan ablation) the legacy runtime
  /// best-fit/refcounting manager decides every allocation dynamically.
  /// Simulated cycles are identical either way; only byte accounting and
  /// the reuse counters differ.
  bool UseMemPlan = true;

  /// A GTX 780 Ti-like configuration (the default).
  static DeviceParams gtx780();
  /// A FirePro W8100-like configuration: comparable bandwidth, slightly
  /// lower effective compute, and much higher launch overhead.
  static DeviceParams w8100();
};

/// Aggregated execution statistics.
struct CostReport {
  double TotalCycles = 0;

  double KernelCycles = 0;
  double HostCycles = 0;
  double TransferCycles = 0;

  int64_t KernelLaunches = 0;
  int64_t GlobalTransactions = 0;
  /// Breakdown of GlobalTransactions by warp-level access pattern: a
  /// warp time-step whose accesses merge into fewer segments than active
  /// lanes contributes coalesced transactions; a step with one segment per
  /// lane (and spilled private-array traffic) contributes scattered ones.
  /// Invariant: Coalesced + Scattered == GlobalTransactions.
  int64_t CoalescedTransactions = 0;
  int64_t ScatteredTransactions = 0;
  int64_t GlobalAccesses = 0; // individual element accesses
  int64_t LocalAccesses = 0;
  int64_t PrivateAccesses = 0;
  int64_t ComputeOps = 0;
  int64_t HostOps = 0;
  int64_t TransferredBytes = 0;

  /// Initial input upload and final result download, excluded from
  /// TotalCycles exactly as the paper's instrumentation excludes them
  /// (Section 6: "total runtime minus the time taken for loading program
  /// input onto the GPU [and] reading final results back").
  double ExcludedTransferCycles = 0;

  /// Atomic read-modify-write traffic from SegHist kernels.
  /// AtomicTransactions counts 128-byte-segment transactions issued by
  /// atomic updates (global strategy: unique destination segments per warp
  /// batch; local strategy: the coalesced per-workgroup merge).
  /// AtomicConflicts counts the extra serialised retries when several
  /// lanes of one warp batch hit the same segment (global strategy only;
  /// local subhistogram contention is scratchpad traffic, not global).
  /// Both are charged per attempt, exactly once per retried launch.
  int64_t AtomicTransactions = 0;
  int64_t AtomicConflicts = 0;

  /// Elements staged through local memory by tiling, and their total
  /// width in bytes (global tiled traffic is charged by byte width, so
  /// f64/i64 tiles cost twice the segments of f32/i32 ones).
  int64_t TiledElementTouches = 0;
  int64_t TiledElementBytes = 0;

  /// Two-engine timeline accounting (zero in --sync mode): cycles each
  /// engine spent occupied, and how much the makespan undercuts the
  /// serial sum thanks to overlap/pipelining.  Invariant:
  /// max(CopyEngineBusy, ComputeEngineBusy) <= TotalCycles <= serial sum.
  double CopyEngineBusy = 0;
  double ComputeEngineBusy = 0;
  double OverlapSavedCycles = 0;

  /// Device buffer-manager accounting: high-water mark of live device
  /// bytes, bytes released by liveness/rebinding, and allocations served
  /// from the free-list of released blocks.
  int64_t PeakDeviceBytes = 0;
  /// High-water mark of transient demand: live bytes at a kernel launch
  /// plus the results that launch materialised while its inputs were
  /// still live.  Always >= PeakDeviceBytes; the smallest capacity the
  /// run actually fits in, which is what the serving layer's admission
  /// controller reserves for packed tenants.
  int64_t PeakDemandBytes = 0;
  int64_t FreedBytes = 0;
  int64_t FreeListHits = 0;

  /// Memory-plan execution accounting (zero under --no-mem-plan): the
  /// plan-derived residency bound (every materialised slab half at its
  /// planned extent — observed PeakDeviceBytes never exceeds it), rebinds
  /// served in place by hoisted double-buffered loop slabs, and slab
  /// occupancies taken over from a dead or consumed array (static reuse).
  int64_t PlannedPeakBytes = 0;
  int64_t HoistedAllocs = 0;
  int64_t ReusedBlocks = 0;

  /// Resilience accounting: simulated cycles spent in retry backoff,
  /// launches that had to be retried, faults the FaultPlan injected, and
  /// kernels the watchdog killed.
  double RetryCycles = 0;
  int64_t RetriedLaunches = 0;
  int64_t FaultsInjected = 0;
  int64_t WatchdogKills = 0;

  /// Cost-model accounting.  Both models price every launch from the same
  /// counters (the comparison is nearly free), so each run carries its own
  /// calibration pair: KernelCycles equals the selected model's total, and
  /// the per-model totals let harnesses measure divergence without a
  /// second run.  str() prints the pipeline clause only when a
  /// non-default model was selected, keeping default cost lines
  /// byte-identical to the pre-interface format.
  std::string CostModelUsed = "roofline";
  double RooflineKernelCycles = 0;
  double PipelineKernelCycles = 0;
  /// Aggregated warp-level profile (model-independent facts; see
  /// KernelProfile in CostModel.h).
  int64_t WarpsSimulated = 0;
  int64_t DivergentWarps = 0;
  int64_t CoalescerExcessTx = 0;
  int64_t BankConflictExtra = 0;

  /// Multi-device accounting (all zero / size 1 with one device, and
  /// str() only prints these fields when NumDevices > 1, so single-device
  /// cost lines are byte-identical to the pre-sharding format).
  int NumDevices = 1;
  int64_t ShardedLaunches = 0;      ///< Logical launches split over devices.
  int64_t InterDeviceBytes = 0;     ///< Bytes moved device-to-device.
  double InterDeviceCycles = 0;     ///< Copy-engine cycles those bytes cost.
  /// Per-device peak kernel working set (input blocks/broadcast copies
  /// plus output block, maximised over sharded launches).
  std::vector<int64_t> PerDevicePeakBytes;

  std::string str() const;
};

struct RunResult {
  std::vector<Value> Outputs;
  CostReport Cost;

  /// True when the device failed persistently and the run was completed by
  /// the reference interpreter instead; FallbackError records the device
  /// failure that forced the degradation.
  bool InterpFallback = false;
  CompilerError FallbackError;
};

class Device {
  DeviceParams P;
  ResilienceParams R;
  /// Compiler-provided memory plan; when null and UseMemPlan is set, the
  /// device plans the program itself before running (so directly
  /// constructed Devices — tests, benches — still execute a plan).
  const mem::MemoryPlan *MemPlan = nullptr;
  /// Compiler-provided shard plan plus the device count to execute it on;
  /// with Devices <= 1 (or no plan) execution is single-device and
  /// bit-identical to the pre-sharding model.
  const shard::ShardPlan *Shards = nullptr;
  int Devices = 1;

public:
  explicit Device(DeviceParams P = DeviceParams::gtx780(),
                  ResilienceParams R = ResilienceParams())
      : P(std::move(P)), R(R) {}

  const DeviceParams &params() const { return P; }
  const ResilienceParams &resilience() const { return R; }

  /// Installs the compile-time memory plan (must outlive the Device's
  /// runs); only consulted when the parameters enable plan execution.
  void setMemoryPlan(const mem::MemoryPlan *MP) { MemPlan = MP; }

  /// Installs the compile-time shard plan and the number of simulated
  /// devices to execute it across (must outlive the Device's runs).
  /// Sharded execution requires the asynchronous timeline; under --sync
  /// the group degenerates to a single device.
  void setShardPlan(const shard::ShardPlan *SP, int NumDevices) {
    Shards = SP;
    Devices = std::max(1, NumDevices);
  }

  /// Runs the named function of a flattened program, simulating kernels on
  /// the device and everything else on the host.  Transient faults (per the
  /// resilience parameters' FaultPlan) are retried with exponential
  /// simulated-cycle backoff; persistent device failures either surface as
  /// typed runtime errors or, when InterpFallback is set, degrade to a
  /// reference-interpreter run flagged in the RunResult.
  ErrorOr<RunResult> run(const Program &Prog, const std::string &Fun,
                         const std::vector<Value> &Args);

  ErrorOr<RunResult> runMain(const Program &Prog,
                             const std::vector<Value> &Args) {
    return run(Prog, "main", Args);
  }
};

} // namespace gpusim
} // namespace fut

#endif // FUTHARKCC_GPUSIM_DEVICE_H
