//===- Device.cpp - Cycle-approximate GPU simulator ---------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Device.h"

#include "gpusim/BufferManager.h"
#include "gpusim/CostModel.h"
#include "gpusim/DeviceGroup.h"
#include "gpusim/Timeline.h"
#include "ir/Printer.h"
#include "ir/Builder.h"
#include "ir/Traversal.h"
#include "shard/ShardPlan.h"
#include "trace/Trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

using namespace fut;
using namespace fut::gpusim;

DeviceParams DeviceParams::gtx780() { return DeviceParams(); }

DeviceParams DeviceParams::w8100() {
  DeviceParams P;
  P.Name = "w8100";
  P.LaunchCycles = 22000; // higher launch overhead (per Section 6.1, NN)
  P.ComputeOpsPerCycle = 1800;
  P.GlobalTxPerCycle = 2.3;
  P.TransferBytesPerCycle = 6;
  P.DeviceMemBytes = 8LL << 30; // 8 GiB, like the FirePro W8100
  P.NumSMs = 44; // 44 GCN compute units
  return P;
}

bool DeviceParams::costModelNameKnown() const {
  return CostModel::byName(CostModelName) != nullptr;
}

std::string CostReport::str() const {
  std::ostringstream OS;
  OS << "cycles=" << static_cast<int64_t>(TotalCycles)
     << " (kernel=" << static_cast<int64_t>(KernelCycles)
     << ", host=" << static_cast<int64_t>(HostCycles)
     << ", transfer=" << static_cast<int64_t>(TransferCycles) << ")"
     << " launches=" << KernelLaunches << " gtx=" << GlobalTransactions
     << " (coalesced=" << CoalescedTransactions
     << ", scattered=" << ScatteredTransactions << ")";
  // Only SegHist kernels issue atomics; printed conditionally so cost
  // lines of histogram-free programs stay byte-identical.
  if (AtomicTransactions || AtomicConflicts)
    OS << " atomictx=" << AtomicTransactions
       << " atomicconflicts=" << AtomicConflicts;
  OS << " gaccess=" << GlobalAccesses << " local=" << LocalAccesses
     << " private=" << PrivateAccesses << " ops=" << ComputeOps
     << " hostops=" << HostOps << " bytes=" << TransferredBytes
     << " retries=" << RetriedLaunches
     << " retrycycles=" << static_cast<int64_t>(RetryCycles)
     << " faults=" << FaultsInjected << " wdkills=" << WatchdogKills
     << " overlapsaved=" << static_cast<int64_t>(OverlapSavedCycles)
     << " copybusy=" << static_cast<int64_t>(CopyEngineBusy)
     << " computebusy=" << static_cast<int64_t>(ComputeEngineBusy)
     << " peakbytes=" << PeakDeviceBytes << " peakdemand=" << PeakDemandBytes
     << " freedbytes=" << FreedBytes
     << " freelisthits=" << FreeListHits
     << " plannedpeak=" << PlannedPeakBytes << " hoisted=" << HoistedAllocs
     << " reused=" << ReusedBlocks;
  // Printed only under a non-default model, so default cost lines stay
  // byte-identical to the pre-CostModel format.
  if (CostModelUsed != "roofline")
    OS << " costmodel=" << CostModelUsed
       << " rooflinecycles=" << static_cast<int64_t>(RooflineKernelCycles)
       << " pipelinecycles=" << static_cast<int64_t>(PipelineKernelCycles)
       << " warps=" << WarpsSimulated << " divergentwarps=" << DivergentWarps
       << " coalescerexcess=" << CoalescerExcessTx
       << " bankconflictextra=" << BankConflictExtra;
  if (NumDevices > 1) {
    OS << " devices=" << NumDevices << " shardedlaunches=" << ShardedLaunches
       << " interdevbytes=" << InterDeviceBytes
       << " interdevcycles=" << static_cast<int64_t>(InterDeviceCycles)
       << " devpeaks=";
    for (size_t D = 0; D < PerDevicePeakBytes.size(); ++D)
      OS << (D ? "," : "") << PerDevicePeakBytes[D];
  }
  return OS.str();
}

#define FUT_TRY(VAR, EXPR)                                                     \
  auto VAR##OrErr = (EXPR);                                                    \
  if (!VAR##OrErr)                                                             \
    return VAR##OrErr.getError();                                              \
  auto VAR = VAR##OrErr.take();

#define FUT_CHECK(EXPR)                                                        \
  do {                                                                         \
    if (auto Err = (EXPR))                                                     \
      return Err.getError();                                                   \
  } while (false)

namespace {

int64_t elemBytes(ScalarKind K) {
  switch (K) {
  case ScalarKind::Bool:
    return 1;
  case ScalarKind::I32:
  case ScalarKind::F32:
    return 4;
  case ScalarKind::I64:
  case ScalarKind::F64:
    return 8;
  }
  return 4;
}

/// A view into a global input array: the input index plus leading indices
/// already applied, and an optional slice of the next dimension.
struct GlobalView {
  int InputIdx = -1;
  std::vector<int64_t> Prefix;
  int64_t SliceOff = 0;
  bool Sliced = false;
  int64_t SliceLen = 0;
  int64_t SliceStride = 1;
};

/// A thread-local value: either an ordinary Value (private memory /
/// registers) or a view of global memory.
struct TValue {
  bool IsView = false;
  Value V;
  GlobalView View;

  TValue() = default;
  TValue(Value V) : V(std::move(V)) {}
  static TValue view(GlobalView G) {
    TValue T;
    T.IsView = true;
    T.View = std::move(G);
    return T;
  }
};

using TEnv = NameMap<TValue>;

/// Simulates one kernel launch: executes every thread, tracks per-warp
/// global-memory coalescing, and produces the kernel's result values.
class KernelSim {
  const DeviceParams &P;
  const KernelExp &K;
  const NameMap<Value> &HostEnv;
  CostReport &Cost;

  std::vector<Value> InputVals;
  std::vector<uint64_t> InputBase;
  std::vector<bool> InputTiled;
  std::vector<std::vector<int>> InputPerm;

  /// The current thread's global access trace (addresses, in order).
  std::vector<uint64_t> *Trace = nullptr;

  /// Warp-level execution profile (CostModel.h), collected as warps
  /// retire; model-independent, so it is gathered unconditionally.
  KernelProfile Prof;
  /// ComputeOps snapshot at each open lane's start; lane op counts are
  /// the snapshot deltas (threads run sequentially, so the ops charged
  /// between two lane starts belong to the earlier lane).
  std::vector<int64_t> LaneOpsStart;

  int ReduceFnOps = 0;

  /// Remaining device-memory budget for this kernel's results, in bytes;
  /// negative means unlimited.  Checked as results materialise so a
  /// runaway kernel fails with DeviceOOM instead of growing host vectors
  /// unboundedly.
  int64_t OutBudgetBytes = -1;
  int64_t OutBytesSoFar = 0;

  /// Sharded launch window over the outer grid dimension; OuterCount < 0
  /// means the whole grid (the single-device default).
  int64_t OuterOffset = 0;
  int64_t OuterCount = -1;

public:
  KernelSim(const DeviceParams &P, const KernelExp &K,
            const NameMap<Value> &HostEnv, CostReport &Cost,
            int64_t OutBudgetBytes = -1)
      : P(P), K(K), HostEnv(HostEnv), Cost(Cost),
        OutBudgetBytes(OutBudgetBytes) {}

  ErrorOr<std::vector<Value>> run();

  /// Restricts this launch to outer-grid indices [Off, Off + Count) of a
  /// sharded kernel.  Thread-index values and output-write addresses stay
  /// global (so coalescing behaves as on the real shard), but only the
  /// local rows are simulated and materialised — the caller concatenates
  /// the per-device results along the outer dimension.
  void setOuterRange(int64_t Off, int64_t Count) {
    OuterOffset = Off;
    OuterCount = Count;
  }

  /// Bytes of results this launch materialised (valid after run()).
  int64_t outBytes() const { return OutBytesSoFar; }

  /// Warp-level execution profile of this launch (valid after run()).
  const KernelProfile &profile() const { return Prof; }

private:
  //===-- Setup -----------------------------------------------------------===//

  MaybeError resolveInputs() {
    uint64_t Base = 1ULL << 40;
    for (const KernelExp::KInput &In : K.Inputs) {
      auto It = HostEnv.find(In.Arr);
      if (It == HostEnv.end())
        return CompilerError("kernel input " + In.Arr.str() +
                             " is not bound on the host");
      InputVals.push_back(It->second);
      InputBase.push_back(Base);
      Base += static_cast<uint64_t>(It->second.numElems() + 64) *
              elemBytes(It->second.elemKind());
      InputTiled.push_back(In.Tiled);
      InputPerm.push_back(In.LayoutPerm);
    }
    return MaybeError::success();
  }

  ErrorOr<int64_t> resolveInt(const SubExp &S) const {
    if (S.isConst())
      return S.getConst().asInt64();
    auto It = HostEnv.find(S.getVar());
    if (It == HostEnv.end())
      return CompilerError("kernel size " + S.getVar().str() +
                           " is not bound on the host");
    return It->second.getScalar().asInt64();
  }

  //===-- Global memory ---------------------------------------------------===//

  const Value &inputOf(const GlobalView &G) const {
    return InputVals[G.InputIdx];
  }

  std::vector<int64_t> viewShape(const GlobalView &G) const {
    const Value &In = inputOf(G);
    std::vector<int64_t> Shape(In.shape().begin() + G.Prefix.size(),
                               In.shape().end());
    if (G.Sliced && !Shape.empty())
      Shape[0] = G.SliceLen;
    return Shape;
  }

  /// Reads one element of a view (full index), charging the access.
  ErrorOr<PrimValue> readView(const GlobalView &G,
                              const std::vector<int64_t> &Idx) {
    const Value &In = inputOf(G);
    std::vector<int64_t> Full = G.Prefix;
    bool First = true;
    for (int64_t I : Idx) {
      Full.push_back(First && G.Sliced ? I * G.SliceStride + G.SliceOff
                                       : I);
      First = false;
    }
    if (!In.inBounds(Full))
      return CompilerError("global read out of bounds");
    chargeGlobal(G.InputIdx, Full, In);
    return In.at(Full);
  }

  void chargeGlobal(int InputIdx, const std::vector<int64_t> &Full,
                    const Value &In) {
    if (InputTiled[InputIdx]) {
      ++Cost.LocalAccesses;
      ++Cost.TiledElementTouches;
      Cost.TiledElementBytes += elemBytes(In.elemKind());
      return;
    }
    // Storage address under the layout permutation.
    const std::vector<int> &Perm = InputPerm[InputIdx];
    uint64_t Off = 0;
    if (Perm.size() == Full.size()) {
      for (size_t D = 0; D < Perm.size(); ++D)
        Off = Off * static_cast<uint64_t>(In.shape()[Perm[D]]) +
              static_cast<uint64_t>(Full[Perm[D]]);
    } else {
      Off = static_cast<uint64_t>(In.flatIndex(Full));
    }
    uint64_t Addr =
        InputBase[InputIdx] + Off * elemBytes(In.elemKind());
    ++Cost.GlobalAccesses;
    if (Trace)
      Trace->push_back(Addr);
  }

  /// Charges a synthetic global write (kernel outputs).
  void chargeWrite(uint64_t Addr) {
    ++Cost.GlobalAccesses;
    if (Trace)
      Trace->push_back(Addr);
  }

  /// Accounts one materialised result value against the device-memory
  /// budget.  Scalars count as one element: per-thread scalar results are
  /// exactly the elements of the assembled output array, so the running
  /// total matches the final outputs' footprint.
  MaybeError chargeOutput(const Value &V) {
    OutBytesSoFar += V.numElems() * elemBytes(V.elemKind());
    if (OutBudgetBytes < 0)
      return MaybeError::success();
    if (OutBytesSoFar > OutBudgetBytes)
      return CompilerError::deviceOOM(
          "device out of memory materialising kernel results: " +
          std::to_string(OutBytesSoFar) + " bytes needed, " +
          std::to_string(OutBudgetBytes) + " free");
    return MaybeError::success();
  }

  /// Charges \p N accesses to a thread-private array of \p ArrElems
  /// elements.  Arrays too large for registers/private memory spill to
  /// global memory with poor locality (roughly one transaction per two
  /// accesses).
  void chargePrivate(int64_t N, int64_t ArrElems) {
    if (ArrElems > P.PrivateSpillElems) {
      Cost.GlobalAccesses += N;
      // Spilled traffic is address-scattered by construction.
      Cost.GlobalTransactions += (N + 1) / 2;
      Cost.ScatteredTransactions += (N + 1) / 2;
      return;
    }
    Cost.PrivateAccesses += N;
  }

  /// Materialises a view into private memory, charging all reads.
  ErrorOr<Value> force(const TValue &T) {
    if (!T.IsView)
      return T.V;
    const GlobalView &G = T.View;
    std::vector<int64_t> Shape = viewShape(G);
    int64_t N = 1;
    for (int64_t D : Shape)
      N *= D;
    if (Shape.empty()) {
      FUT_TRY(V, readView(G, {}));
      return Value::scalar(V);
    }
    std::vector<PrimValue> Data;
    Data.reserve(N);
    std::vector<int64_t> Idx(Shape.size(), 0);
    for (int64_t F = 0; F < N; ++F) {
      FUT_TRY(V, readView(G, Idx));
      Data.push_back(V);
      for (int D = static_cast<int>(Shape.size()) - 1; D >= 0; --D) {
        if (++Idx[D] < Shape[D])
          break;
        Idx[D] = 0;
      }
    }
    Cost.PrivateAccesses += N;
    return Value::array(inputOf(G).elemKind(), std::move(Shape),
                        std::move(Data));
  }

  //===-- Thread evaluation ------------------------------------------------===//

  ErrorOr<TValue> evalSubExp(const SubExp &S, const TEnv &Env) {
    if (S.isConst())
      return TValue(Value::scalar(S.getConst()));
    auto It = Env.find(S.getVar());
    if (It != Env.end())
      return It->second;
    auto H = HostEnv.find(S.getVar());
    if (H != HostEnv.end())
      return TValue(H->second);
    return CompilerError("unbound variable " + S.getVar().str() +
                         " in kernel");
  }

  ErrorOr<PrimValue> evalScalar(const SubExp &S, const TEnv &Env) {
    FUT_TRY(T, evalSubExp(S, Env));
    if (T.IsView)
      return CompilerError("expected a scalar, found a view");
    if (!T.V.isScalar())
      return CompilerError("expected a scalar");
    return T.V.getScalar();
  }

  ErrorOr<std::vector<TValue>> evalBody(const Body &B, TEnv Env) {
    for (const Stm &S : B.Stms) {
      FUT_TRY(Vals, evalExp(*S.E, Env));
      if (Vals.size() != S.Pat.size())
        return CompilerError("pattern arity mismatch in kernel body");
      for (size_t I = 0; I < Vals.size(); ++I)
        Env[S.Pat[I].Name] = std::move(Vals[I]);
    }
    std::vector<TValue> Out;
    for (const SubExp &R : B.Result) {
      FUT_TRY(V, evalSubExp(R, Env));
      Out.push_back(std::move(V));
    }
    return Out;
  }

  ErrorOr<std::vector<Value>> evalLambdaT(const Lambda &L,
                                          std::vector<Value> Args,
                                          const TEnv &Env) {
    TEnv Inner = Env;
    if (Args.size() != L.Params.size())
      return CompilerError("kernel lambda arity mismatch");
    for (size_t I = 0; I < Args.size(); ++I)
      Inner[L.Params[I].Name] = TValue(std::move(Args[I]));
    FUT_TRY(Res, evalBody(L.B, std::move(Inner)));
    std::vector<Value> Out;
    for (TValue &T : Res) {
      FUT_TRY(V, force(T));
      Out.push_back(std::move(V));
    }
    return Out;
  }

  /// Reads row I of a (private or view) array value, charging reads.
  ErrorOr<Value> rowOf(const TValue &T, int64_t I) {
    if (T.IsView) {
      GlobalView G = T.View;
      int64_t Real = G.Sliced ? I * G.SliceStride + G.SliceOff : I;
      G.Prefix.push_back(Real);
      G.Sliced = false;
      G.SliceStride = 1;
      std::vector<int64_t> Shape = viewShape(G);
      if (Shape.empty()) {
        FUT_TRY(V, readView(G, {}));
        return Value::scalar(V);
      }
      return force(TValue::view(G));
    }
    if (!T.V.isArray() || I < 0 || I >= T.V.outerSize())
      return CompilerError("row read out of bounds in kernel");
    chargePrivate(T.V.rowElems(), T.V.numElems());
    return T.V.row(I);
  }

  ErrorOr<int64_t> outerSizeOf(const TValue &T) {
    if (T.IsView) {
      std::vector<int64_t> Shape = viewShape(T.View);
      if (Shape.empty())
        return CompilerError("scalar view has no outer size");
      return Shape[0];
    }
    if (!T.V.isArray())
      return CompilerError("scalar has no outer size");
    return T.V.outerSize();
  }

  ErrorOr<std::vector<TValue>> evalExp(const Exp &E, TEnv &Env);

  //===-- Per-kernel-kind driving ------------------------------------------===//

  ErrorOr<std::vector<Value>> runThreadBody();
  ErrorOr<std::vector<Value>> runSegmented();
  ErrorOr<std::vector<Value>> runSegHist();

  /// Opens a new lane of the current warp: snapshots the op counter so
  /// the lane's compute work can be attributed at warp close.  Call
  /// exactly once per WarpTraces lane.
  void beginLane() { LaneOpsStart.push_back(Cost.ComputeOps); }

  /// Merges the per-thread traces of one warp into transactions and
  /// closes the warp's profile entry (issue slots after divergence
  /// serialisation, coalescer-queue overflow).
  void mergeWarp(std::vector<std::vector<uint64_t>> &WarpTraces) {
    size_t MaxLen = 0;
    for (const auto &T : WarpTraces)
      MaxLen = std::max(MaxLen, T.size());
    std::vector<uint64_t> Segs;
    for (size_t I = 0; I < MaxLen; ++I) {
      Segs.clear();
      int64_t Lanes = 0;
      for (const auto &T : WarpTraces)
        if (I < T.size()) {
          Segs.push_back(T[I] / static_cast<uint64_t>(P.SegmentBytes));
          ++Lanes;
        }
      std::sort(Segs.begin(), Segs.end());
      Segs.erase(std::unique(Segs.begin(), Segs.end()), Segs.end());
      int64_t Tx = static_cast<int64_t>(Segs.size());
      Cost.GlobalTransactions += Tx;
      // A time-step whose accesses merged into fewer segments than active
      // lanes coalesced; one segment per lane means no merging happened.
      if (Tx < Lanes)
        Cost.CoalescedTransactions += Tx;
      else
        Cost.ScatteredTransactions += Tx;
      ++Prof.MemSteps;
      Prof.CoalescerExcessTx +=
          std::max<int64_t>(0, Tx - P.CoalescerQueueDepth);
    }
    for (auto &T : WarpTraces)
      T.clear();

    if (LaneOpsStart.empty())
      return;
    ++Prof.Warps;
    int64_t MinOps = INT64_MAX, MaxOps = 0, SumOps = 0;
    for (size_t I = 0; I < LaneOpsStart.size(); ++I) {
      int64_t End = I + 1 < LaneOpsStart.size() ? LaneOpsStart[I + 1]
                                                : Cost.ComputeOps;
      int64_t Ops = End - LaneOpsStart[I];
      MinOps = std::min(MinOps, Ops);
      MaxOps = std::max(MaxOps, Ops);
      SumOps += Ops;
    }
    Prof.LaneOps += SumOps;
    // The converged prefix issues once warp-wide; the divergent remainder
    // serialises per lane.  Uniform warps issue exactly MaxOps slots.
    int64_t LaneCount = static_cast<int64_t>(LaneOpsStart.size());
    Prof.WarpIssueOps += SumOps - (LaneCount - 1) * MinOps;
    if (MaxOps != MinOps)
      ++Prof.DivergentWarps;
    LaneOpsStart.clear();
  }
};

//===----------------------------------------------------------------------===//
// Thread-level expression evaluation
//===----------------------------------------------------------------------===//

ErrorOr<std::vector<TValue>> KernelSim::evalExp(const Exp &E, TEnv &Env) {
  ++Cost.ComputeOps;

  auto One = [](TValue V) {
    std::vector<TValue> Out;
    Out.push_back(std::move(V));
    return Out;
  };

  switch (E.kind()) {
  case ExpKind::SubExpE: {
    FUT_TRY(V, evalSubExp(expCast<SubExpExp>(&E)->Val, Env));
    return One(std::move(V));
  }

  case ExpKind::BinOpE: {
    const auto *X = expCast<BinOpExp>(&E);
    FUT_TRY(A, evalScalar(X->A, Env));
    FUT_TRY(B, evalScalar(X->B, Env));
    FUT_TRY(R, evalBinOp(X->Op, A, B));
    return One(TValue(Value::scalar(R)));
  }

  case ExpKind::UnOpE: {
    const auto *X = expCast<UnOpExp>(&E);
    FUT_TRY(A, evalScalar(X->A, Env));
    FUT_TRY(R, evalUnOp(X->Op, A));
    return One(TValue(Value::scalar(R)));
  }

  case ExpKind::ConvOpE: {
    const auto *X = expCast<ConvOpExp>(&E);
    FUT_TRY(A, evalScalar(X->A, Env));
    return One(TValue(Value::scalar(evalConvOp(X->Op, A))));
  }

  case ExpKind::If: {
    const auto *X = expCast<IfExp>(&E);
    FUT_TRY(C, evalScalar(X->Cond, Env));
    return evalBody(C.getBool() ? X->Then : X->Else, Env);
  }

  case ExpKind::Index: {
    const auto *X = expCast<IndexExp>(&E);
    FUT_TRY(T, evalSubExp(SubExp::var(X->Arr), Env));
    std::vector<int64_t> Idx;
    for (const SubExp &S : X->Indices) {
      FUT_TRY(I, evalScalar(S, Env));
      Idx.push_back(I.asInt64());
    }
    if (T.IsView) {
      GlobalView G = T.View;
      // Apply indices one by one (the first may hit the slice window).
      for (int64_t I : Idx) {
        if (G.Sliced && (I < 0 || I >= G.SliceLen))
          return CompilerError(E.Loc, "index out of slice bounds");
        int64_t Real = G.Sliced ? I * G.SliceStride + G.SliceOff : I;
        G.Prefix.push_back(Real);
        G.Sliced = false;
        G.SliceStride = 1;
      }
      if (G.Prefix.size() ==
          static_cast<size_t>(inputOf(G).rank())) {
        std::vector<int64_t> Full = G.Prefix;
        G.Prefix.clear();
        if (!inputOf(G).inBounds(Full))
          return CompilerError(E.Loc, "global read out of bounds");
        chargeGlobal(G.InputIdx, Full, inputOf(G));
        return One(TValue(Value::scalar(inputOf(G).at(Full))));
      }
      return One(TValue::view(G));
    }
    if (!T.V.inBounds(Idx))
      return CompilerError(E.Loc, "index out of bounds in kernel");
    if (Idx.size() == T.V.shape().size()) {
      chargePrivate(1, T.V.numElems());
      return One(TValue(Value::scalar(T.V.at(Idx))));
    }
    Value Sliced = T.V.slice(Idx);
    chargePrivate(Sliced.numElems(), T.V.numElems());
    return One(TValue(std::move(Sliced)));
  }

  case ExpKind::Slice: {
    const auto *X = expCast<SliceExp>(&E);
    FUT_TRY(T, evalSubExp(SubExp::var(X->Arr), Env));
    FUT_TRY(Off, evalScalar(X->Offset, Env));
    FUT_TRY(Len, evalScalar(X->Len, Env));
    FUT_TRY(Str, evalScalar(X->Stride, Env));
    int64_t O = Off.asInt64(), L = Len.asInt64(), SS = Str.asInt64();
    FUT_TRY(N, outerSizeOf(T));
    if (O < 0 || L < 0 || SS <= 0 || (L > 0 && O + (L - 1) * SS >= N))
      return CompilerError(E.Loc, "slice out of bounds in kernel");
    if (T.IsView && !T.View.Sliced) {
      GlobalView G = T.View;
      G.SliceOff = O;
      G.Sliced = true;
      G.SliceLen = L;
      G.SliceStride = SS;
      return One(TValue::view(G));
    }
    FUT_TRY(V, force(T));
    std::vector<int64_t> Shape = V.shape();
    Shape[0] = L;
    int64_t RowElems = V.rowElems();
    std::vector<PrimValue> Data;
    Data.reserve(L * RowElems);
    for (int64_t I = 0; I < L; ++I) {
      int64_t Row = O + I * SS;
      Data.insert(Data.end(), V.flat().begin() + Row * RowElems,
                  V.flat().begin() + (Row + 1) * RowElems);
    }
    chargePrivate(L * RowElems, V.numElems());
    return One(TValue(Value::array(V.elemKind(), std::move(Shape),
                                   std::move(Data))));
  }

  case ExpKind::Update: {
    const auto *X = expCast<UpdateExp>(&E);
    FUT_TRY(T, evalSubExp(SubExp::var(X->Arr), Env));
    FUT_TRY(A, force(T));
    Env.erase(X->Arr); // consumed; keeps the in-place update O(1)
    std::vector<int64_t> Idx;
    for (const SubExp &S : X->Indices) {
      FUT_TRY(I, evalScalar(S, Env));
      Idx.push_back(I.asInt64());
    }
    FUT_TRY(VT, evalSubExp(X->Value, Env));
    FUT_TRY(V, force(VT));
    if (!A.inBounds(Idx))
      return CompilerError(E.Loc, "update out of bounds in kernel");
    if (Idx.size() == A.shape().size()) {
      A.flatMut()[A.flatIndex(Idx)] = V.getScalar();
      chargePrivate(1, A.numElems());
    } else {
      int64_t Inner = V.numElems();
      int64_t Off = 0;
      for (size_t I = 0; I < Idx.size(); ++I)
        Off = Off * A.shape()[I] + Idx[I];
      Off *= Inner;
      auto &Flat = A.flatMut();
      for (int64_t I = 0; I < Inner; ++I)
        Flat[Off + I] = V.flat()[I];
      chargePrivate(Inner, A.numElems());
    }
    return One(TValue(std::move(A)));
  }

  case ExpKind::Iota: {
    const auto *X = expCast<IotaExp>(&E);
    FUT_TRY(N, evalScalar(X->N, Env));
    int64_t Len = N.asInt64();
    if (Len < 0)
      return CompilerError(E.Loc, "iota of negative length");
    std::vector<PrimValue> Data;
    Data.reserve(Len);
    for (int64_t I = 0; I < Len; ++I)
      Data.push_back(X->Elem == ScalarKind::I64
                         ? PrimValue::makeI64(I)
                         : PrimValue::makeI32(static_cast<int32_t>(I)));
    chargePrivate(Len, Len);
    return One(TValue(Value::array(X->Elem, {Len}, std::move(Data))));
  }

  case ExpKind::Replicate: {
    const auto *X = expCast<ReplicateExp>(&E);
    FUT_TRY(N, evalScalar(X->N, Env));
    int64_t Len = N.asInt64();
    FUT_TRY(T, evalSubExp(X->Val, Env));
    FUT_TRY(V, force(T));
    if (Len < 0)
      return CompilerError(E.Loc, "replicate of negative count");
    Value Out;
    if (V.isScalar()) {
      Out = Value::filledArray(V.getScalar().kind(), {Len}, V.getScalar());
    } else {
      std::vector<int64_t> Shape;
      Shape.push_back(Len);
      Shape.insert(Shape.end(), V.shape().begin(), V.shape().end());
      std::vector<PrimValue> Data;
      Data.reserve(Len * V.numElems());
      for (int64_t I = 0; I < Len; ++I)
        Data.insert(Data.end(), V.flat().begin(), V.flat().end());
      Out = Value::array(V.elemKind(), std::move(Shape), std::move(Data));
    }
    chargePrivate(Out.numElems(), Out.numElems());
    return One(TValue(std::move(Out)));
  }

  case ExpKind::Rearrange: {
    const auto *X = expCast<RearrangeExp>(&E);
    FUT_TRY(T, evalSubExp(SubExp::var(X->Arr), Env));
    FUT_TRY(A, force(T));
    int Rank = A.rank();
    std::vector<int64_t> NewShape(Rank);
    for (int I = 0; I < Rank; ++I)
      NewShape[I] = A.shape()[X->Perm[I]];
    std::vector<PrimValue> Data(A.numElems());
    std::vector<int64_t> OutIdx(Rank, 0), SrcIdx(Rank, 0);
    for (int64_t F = 0; F < A.numElems(); ++F) {
      for (int I = 0; I < Rank; ++I)
        SrcIdx[X->Perm[I]] = OutIdx[I];
      Data[F] = A.at(SrcIdx);
      for (int I = Rank - 1; I >= 0; --I) {
        if (++OutIdx[I] < NewShape[I])
          break;
        OutIdx[I] = 0;
      }
    }
    chargePrivate(2 * A.numElems(), A.numElems());
    return One(TValue(Value::array(A.elemKind(), std::move(NewShape),
                                   std::move(Data))));
  }

  case ExpKind::Reshape: {
    const auto *X = expCast<ReshapeExp>(&E);
    FUT_TRY(T, evalSubExp(SubExp::var(X->Arr), Env));
    FUT_TRY(A, force(T));
    std::vector<int64_t> Shape;
    for (const SubExp &S : X->NewShape) {
      FUT_TRY(D, evalScalar(S, Env));
      Shape.push_back(D.asInt64());
    }
    std::vector<PrimValue> Data = A.flat();
    return One(TValue(Value::array(A.elemKind(), std::move(Shape),
                                   std::move(Data))));
  }

  case ExpKind::Concat: {
    const auto *X = expCast<ConcatExp>(&E);
    std::vector<Value> Parts;
    for (const VName &N : X->Arrays) {
      FUT_TRY(T, evalSubExp(SubExp::var(N), Env));
      FUT_TRY(V, force(T));
      Parts.push_back(std::move(V));
    }
    FUT_TRY(R, concatValues(Parts));
    chargePrivate(R.numElems(), R.numElems());
    return One(TValue(std::move(R)));
  }

  case ExpKind::Copy: {
    FUT_TRY(T, evalSubExp(SubExp::var(expCast<CopyExp>(&E)->Arr), Env));
    FUT_TRY(V, force(T));
    if (V.isArray()) {
      chargePrivate(V.numElems(), V.numElems());
      std::vector<PrimValue> Data = V.flat();
      std::vector<int64_t> Shape = V.shape();
      V = Value::array(V.elemKind(), std::move(Shape), std::move(Data));
    }
    return One(TValue(std::move(V)));
  }

  case ExpKind::Loop: {
    const auto *X = expCast<LoopExp>(&E);
    FUT_TRY(BoundV, evalScalar(X->Bound, Env));
    int64_t Bound = BoundV.asInt64();
    std::vector<TValue> Merge;
    for (const SubExp &S : X->MergeInit) {
      FUT_TRY(V, evalSubExp(S, Env));
      Merge.push_back(std::move(V));
    }
    ScalarKind IK = BoundV.kind();
    for (int64_t I = 0; I < Bound; ++I) {
      TEnv Inner = Env;
      Inner[X->IndexVar] = TValue(Value::scalar(
          IK == ScalarKind::I64
              ? PrimValue::makeI64(I)
              : PrimValue::makeI32(static_cast<int32_t>(I))));
      for (size_t J = 0; J < X->MergeParams.size(); ++J)
        Inner[X->MergeParams[J].Name] = Merge[J];
      FUT_TRY(Next, evalBody(X->LoopBody, std::move(Inner)));
      Merge = std::move(Next);
    }
    return Merge;
  }

  case ExpKind::Map: {
    const auto *X = expCast<MapExp>(&E);
    FUT_TRY(WV, evalScalar(X->Width, Env));
    int64_t W = WV.asInt64();
    std::vector<TValue> Arrays;
    for (const VName &N : X->Arrays) {
      FUT_TRY(T, evalSubExp(SubExp::var(N), Env));
      Arrays.push_back(std::move(T));
    }
    size_t NumRes = X->Fn.RetTypes.size();
    std::vector<std::vector<Value>> Cols(NumRes);
    for (int64_t I = 0; I < W; ++I) {
      std::vector<Value> Args;
      for (const TValue &A : Arrays) {
        FUT_TRY(R, rowOf(A, I));
        Args.push_back(std::move(R));
      }
      FUT_TRY(Res, evalLambdaT(X->Fn, std::move(Args), Env));
      for (size_t J = 0; J < NumRes; ++J)
        Cols[J].push_back(std::move(Res[J]));
    }
    std::vector<TValue> Out;
    for (size_t J = 0; J < NumRes; ++J) {
      if (W == 0) {
        Out.push_back(TValue(
            Value::array(X->Fn.RetTypes[J].elemKind(), {0}, {})));
        continue;
      }
      FUT_TRY(Col, assembleArray(Cols[J]));
      chargePrivate(Col.numElems(), Col.numElems());
      Out.push_back(TValue(std::move(Col)));
    }
    return Out;
  }

  case ExpKind::Reduce:
  case ExpKind::Scan: {
    // Sequential in-thread reduction / scan.
    SubExp Width;
    const Lambda *Fn;
    const std::vector<SubExp> *Neutral;
    const std::vector<VName> *Arrays;
    bool IsScan = E.kind() == ExpKind::Scan;
    if (IsScan) {
      const auto *X = expCast<ScanExp>(&E);
      Width = X->Width;
      Fn = &X->Fn;
      Neutral = &X->Neutral;
      Arrays = &X->Arrays;
    } else {
      const auto *X = expCast<ReduceExp>(&E);
      Width = X->Width;
      Fn = &X->Fn;
      Neutral = &X->Neutral;
      Arrays = &X->Arrays;
    }
    FUT_TRY(WV, evalScalar(Width, Env));
    int64_t W = WV.asInt64();
    std::vector<Value> Acc;
    for (const SubExp &S : *Neutral) {
      FUT_TRY(T, evalSubExp(S, Env));
      FUT_TRY(V, force(T));
      Acc.push_back(std::move(V));
    }
    std::vector<TValue> Ins;
    for (const VName &N : *Arrays) {
      FUT_TRY(T, evalSubExp(SubExp::var(N), Env));
      Ins.push_back(std::move(T));
    }
    std::vector<std::vector<Value>> Cols(Acc.size());
    for (int64_t I = 0; I < W; ++I) {
      std::vector<Value> Args = Acc;
      for (const TValue &A : Ins) {
        FUT_TRY(R, rowOf(A, I));
        Args.push_back(std::move(R));
      }
      FUT_TRY(Res, evalLambdaT(*Fn, std::move(Args), Env));
      Acc = std::move(Res);
      if (IsScan)
        for (size_t J = 0; J < Acc.size(); ++J)
          Cols[J].push_back(Acc[J]);
    }
    std::vector<TValue> Out;
    if (!IsScan) {
      for (Value &A : Acc)
        Out.push_back(TValue(std::move(A)));
      return Out;
    }
    for (size_t J = 0; J < Cols.size(); ++J) {
      if (W == 0) {
        Out.push_back(
            TValue(Value::array(Fn->RetTypes[J].elemKind(), {0}, {})));
        continue;
      }
      FUT_TRY(Col, assembleArray(Cols[J]));
      chargePrivate(Col.numElems(), Col.numElems());
      Out.push_back(TValue(std::move(Col)));
    }
    return Out;
  }

  case ExpKind::Stream: {
    // Sequentialised in-thread stream, run with chunk size one — the
    // paper's "efficient sequentialisation with asymptotically reduced
    // per-thread memory footprint" (Section 4.1): all per-chunk arrays
    // are singletons, so nothing spills.
    const auto *X = expCast<StreamExp>(&E);
    FUT_TRY(WV, evalScalar(X->Width, Env));
    int64_t W = WV.asInt64();

    std::vector<Value> AccInit;
    for (const SubExp &S : X->AccInit) {
      FUT_TRY(T, evalSubExp(S, Env));
      FUT_TRY(V, force(T));
      AccInit.push_back(std::move(V));
    }
    std::vector<TValue> Ins;
    for (const VName &N : X->Arrays) {
      FUT_TRY(T, evalSubExp(SubExp::var(N), Env));
      Ins.push_back(std::move(T));
    }

    PrimValue One1 = WV.kind() == ScalarKind::I64 ? PrimValue::makeI64(1)
                                                  : PrimValue::makeI32(1);
    size_t NumMapped = X->FoldFn.RetTypes.size() - X->NumAccs;
    std::vector<std::vector<Value>> MappedElems(NumMapped);
    std::vector<Value> Accs = AccInit;
    static const Program Empty;
    Interpreter RedI(Empty);

    for (int64_t I = 0; I < W; ++I) {
      std::vector<Value> Args;
      Args.push_back(Value::scalar(One1));
      const std::vector<Value> &ChunkAccs =
          X->Form == StreamExp::FormKind::Seq ? Accs : AccInit;
      if (X->Form != StreamExp::FormKind::Par)
        for (const Value &A : ChunkAccs)
          Args.push_back(A);
      for (const TValue &A : Ins) {
        FUT_TRY(Row, rowOf(A, I));
        if (Row.isScalar()) {
          Args.push_back(Value::array(Row.getScalar().kind(), {1},
                                      {Row.getScalar()}));
        } else {
          std::vector<int64_t> Shape;
          Shape.push_back(1);
          Shape.insert(Shape.end(), Row.shape().begin(),
                       Row.shape().end());
          std::vector<PrimValue> Data = Row.flat();
          Args.push_back(Value::array(Row.elemKind(), std::move(Shape),
                                      std::move(Data)));
        }
      }
      FUT_TRY(Res, evalLambdaT(X->FoldFn, std::move(Args), Env));
      std::vector<Value> ChunkAccOut(Res.begin(),
                                     Res.begin() + X->NumAccs);
      switch (X->Form) {
      case StreamExp::FormKind::Par:
        break;
      case StreamExp::FormKind::Seq:
        Accs = std::move(ChunkAccOut);
        break;
      case StreamExp::FormKind::Red: {
        std::vector<Value> CArgs = Accs;
        for (Value &V : ChunkAccOut)
          CArgs.push_back(std::move(V));
        FUT_TRY(Comb, RedI.evalLambda(X->ReduceFn, CArgs, {}));
        Accs = std::move(Comb);
        ++Cost.ComputeOps;
        break;
      }
      }
      for (size_t J = 0; J < NumMapped; ++J)
        MappedElems[J].push_back(Res[X->NumAccs + J].row(0));
    }

    std::vector<TValue> Out;
    for (Value &A : Accs)
      Out.push_back(TValue(std::move(A)));
    for (size_t J = 0; J < NumMapped; ++J) {
      if (W == 0) {
        Out.push_back(TValue(Value::array(
            X->FoldFn.RetTypes[X->NumAccs + J].elemKind(), {0}, {})));
        continue;
      }
      FUT_TRY(Col, assembleArray(MappedElems[J]));
      chargePrivate(Col.numElems(), Col.numElems());
      Out.push_back(TValue(std::move(Col)));
    }
    return Out;
  }

  default:
    return CompilerError(E.Loc,
                         std::string("expression kind '") +
                             expKindName(E.kind()) +
                             "' is not executable inside a kernel");
  }
}

//===----------------------------------------------------------------------===//
// Kernel driving
//===----------------------------------------------------------------------===//

ErrorOr<std::vector<Value>> KernelSim::run() {
  FUT_CHECK(resolveInputs());
  ReduceFnOps = static_cast<int>(K.ReduceFn.B.Stms.size()) + 1;
  if (K.Op == KernelExp::OpKind::ThreadBody)
    return runThreadBody();
  if (K.Op == KernelExp::OpKind::SegHist)
    return runSegHist();
  return runSegmented();
}

ErrorOr<std::vector<Value>> KernelSim::runThreadBody() {
  std::vector<int64_t> Grid;
  for (const SubExp &D : K.GridDims) {
    FUT_TRY(G, resolveInt(D));
    Grid.push_back(G);
  }
  // A sharded launch covers only [OuterOffset, OuterOffset + OuterCount)
  // of the outer grid dimension; addresses and thread-index values stay
  // global so per-shard coalescing matches the unsharded access pattern.
  int64_t OuterTotal = Grid.empty() ? 1 : Grid[0];
  if (OuterCount >= 0 && !Grid.empty())
    Grid[0] = OuterCount;
  int64_t Threads = 1;
  for (int64_t G : Grid)
    Threads *= G;
  int64_t InnerElems = 1;
  for (size_t I = 1; I < Grid.size(); ++I)
    InnerElems *= Grid[I];
  int64_t GlobalThreads = OuterTotal * InnerElems;
  int64_t ThreadOffset = OuterOffset * InnerElems;

  TEnv Base;
  for (size_t I = 0; I < K.Inputs.size(); ++I) {
    GlobalView G;
    G.InputIdx = static_cast<int>(I);
    Base[K.Inputs[I].Arr] = TValue::view(G);
  }

  size_t NumRes = K.RetTypes.size();
  std::vector<std::vector<Value>> PerThread(NumRes);
  std::vector<std::vector<uint64_t>> WarpTraces;

  std::vector<int64_t> Idx(Grid.size(), 0);
  for (int64_t T = 0; T < Threads; ++T) {
    WarpTraces.emplace_back();
    Trace = &WarpTraces.back();
    beginLane();

    TEnv Env = Base;
    for (size_t I = 0; I < Grid.size(); ++I)
      Env[K.ThreadIndices[I]] = TValue(Value::scalar(PrimValue::makeI32(
          static_cast<int32_t>(Idx[I] + (I == 0 ? OuterOffset : 0)))));

    int64_t GlobalT = T + ThreadOffset;
    FUT_TRY(Res, evalBody(K.ThreadBody, std::move(Env)));
    if (Res.size() != NumRes)
      return CompilerError("kernel thread result arity mismatch");
    for (size_t J = 0; J < NumRes; ++J) {
      FUT_TRY(V, force(Res[J]));
      FUT_CHECK(chargeOutput(V));
      // Charge the output writes: row-major per thread, or with the
      // thread index innermost when results are stored transposed.  The
      // global thread id keeps shard-boundary addresses exact.
      uint64_t OutBase = (2ULL << 50) + (static_cast<uint64_t>(J) << 44);
      int64_t Elems = V.numElems();
      for (int64_t EIdx = 0; EIdx < Elems; ++EIdx) {
        uint64_t Off = K.TransposedOutputs
                           ? static_cast<uint64_t>(EIdx) *
                                     static_cast<uint64_t>(GlobalThreads) +
                                 static_cast<uint64_t>(GlobalT)
                           : static_cast<uint64_t>(GlobalT * Elems + EIdx);
        chargeWrite(OutBase + Off * elemBytes(V.elemKind()));
      }
      PerThread[J].push_back(std::move(V));
    }

    if (WarpTraces.size() == static_cast<size_t>(P.WarpSize) ||
        T == Threads - 1) {
      Trace = nullptr;
      mergeWarp(WarpTraces);
      WarpTraces.clear();
    }

    for (int I = static_cast<int>(Grid.size()) - 1; I >= 0; --I) {
      if (++Idx[I] < Grid[I])
        break;
      Idx[I] = 0;
    }
  }
  Trace = nullptr;

  // Assemble results.
  std::vector<Value> Out;
  for (size_t J = 0; J < NumRes; ++J) {
    if (Threads == 0) {
      Out.push_back(Value::array(K.RetTypes[J].elemKind(), Grid, {}));
      continue;
    }
    FUT_TRY(Flat, assembleArray(PerThread[J]));
    std::vector<int64_t> Shape = Grid;
    const Value &First = PerThread[J][0];
    if (First.isArray())
      Shape.insert(Shape.end(), First.shape().begin(),
                   First.shape().end());
    std::vector<PrimValue> Data = Flat.flat();
    Out.push_back(Value::array(Flat.elemKind(), std::move(Shape),
                               std::move(Data)));
  }
  return Out;
}

ErrorOr<std::vector<Value>> KernelSim::runSegmented() {
  std::vector<int64_t> Grid;
  for (const SubExp &D : K.GridDims) {
    FUT_TRY(G, resolveInt(D));
    Grid.push_back(G);
  }
  // Sharded window over the outer (segment) dimension; segment-index
  // values handed to the thread body stay global.
  if (OuterCount >= 0 && !Grid.empty())
    Grid[0] = OuterCount;
  int64_t NumSegs = 1;
  for (int64_t G : Grid)
    NumSegs *= G;
  FUT_TRY(SegSize, resolveInt(K.SegSize));

  TEnv Base;
  for (size_t I = 0; I < K.Inputs.size(); ++I) {
    GlobalView G;
    G.InputIdx = static_cast<int>(I);
    Base[K.Inputs[I].Arr] = TValue::view(G);
  }

  // Evaluate the neutral elements on the host environment.
  std::vector<Value> NeutralVals;
  for (const SubExp &N : K.Neutral) {
    if (N.isConst()) {
      NeutralVals.push_back(Value::scalar(N.getConst()));
    } else {
      auto It = HostEnv.find(N.getVar());
      if (It == HostEnv.end())
        return CompilerError("kernel neutral element is unbound");
      NeutralVals.push_back(It->second);
    }
  }

  // For evaluating the reduction operator on plain values.
  static const Program Empty;
  Interpreter RedInterp(Empty);

  bool IsScan = K.Op == KernelExp::OpKind::SegScan;
  size_t NumRes = K.Neutral.size();
  std::vector<std::vector<Value>> PerSeg(NumRes);
  std::vector<std::vector<uint64_t>> WarpTraces;
  int64_t LaneInWarp = 0;

  // Thread mapping: with a grid, one thread handles one whole segment
  // sequentially (warps span consecutive segments — the layout-sensitive
  // case the coalescing transformation targets); a gridless kernel is a
  // single large reduction/scan parallelised within the segment.
  bool ThreadPerSegment = !Grid.empty();

  std::vector<int64_t> Idx(Grid.size(), 0);
  for (int64_t Seg = 0; Seg < NumSegs; ++Seg) {
    std::vector<Value> Acc = NeutralVals;
    std::vector<std::vector<Value>> ScanCols(NumRes);

    if (ThreadPerSegment) {
      WarpTraces.emplace_back();
      Trace = &WarpTraces.back();
      beginLane();
    }

    for (int64_t S = 0; S < SegSize; ++S) {
      if (!ThreadPerSegment) {
        WarpTraces.emplace_back();
        Trace = &WarpTraces.back();
        beginLane();
      }

      TEnv Env = Base;
      for (size_t I = 0; I < Grid.size(); ++I)
        Env[K.ThreadIndices[I]] = TValue(Value::scalar(PrimValue::makeI32(
            static_cast<int32_t>(Idx[I] + (I == 0 ? OuterOffset : 0)))));
      Env[K.SegIndex] = TValue(Value::scalar(
          PrimValue::makeI32(static_cast<int32_t>(S))));

      FUT_TRY(Res, evalBody(K.ThreadBody, std::move(Env)));
      std::vector<Value> Elems;
      for (TValue &T : Res) {
        FUT_TRY(V, force(T));
        Elems.push_back(std::move(V));
      }

      std::vector<Value> Args = Acc;
      for (Value &V : Elems)
        Args.push_back(std::move(V));
      FUT_TRY(Comb, RedInterp.evalLambda(K.ReduceFn, Args, {}));
      Acc = std::move(Comb);
      Cost.ComputeOps += ReduceFnOps;
      if (IsScan)
        for (size_t J = 0; J < NumRes; ++J)
          ScanCols[J].push_back(Acc[J]);

      if (!ThreadPerSegment && ++LaneInWarp == P.WarpSize) {
        Trace = nullptr;
        mergeWarp(WarpTraces);
        WarpTraces.clear();
        LaneInWarp = 0;
      }
    }

    if (ThreadPerSegment && ++LaneInWarp == P.WarpSize) {
      Trace = nullptr;
      mergeWarp(WarpTraces);
      WarpTraces.clear();
      LaneInWarp = 0;
    }

    // The tree combine within the segment costs an extra log factor,
    // already roughly covered by charging the operator per element; the
    // result writes go to global memory.
    for (size_t J = 0; J < NumRes; ++J) {
      if (IsScan) {
        if (SegSize == 0) {
          PerSeg[J].push_back(
              Value::array(NeutralVals[J].elemKind(), {0}, {}));
        } else {
          FUT_TRY(Col, assembleArray(ScanCols[J]));
          FUT_CHECK(chargeOutput(Col));
          Cost.GlobalAccesses += Col.numElems();
          int64_t Tx = (Col.numElems() * elemBytes(Col.elemKind()) +
                        P.SegmentBytes - 1) /
                       P.SegmentBytes;
          Cost.GlobalTransactions += Tx;
          Cost.CoalescedTransactions += Tx; // contiguous result write
          PerSeg[J].push_back(std::move(Col));
        }
      } else {
        FUT_CHECK(chargeOutput(Acc[J]));
        Cost.GlobalAccesses += Acc[J].numElems();
        int64_t Tx = (Acc[J].numElems() * elemBytes(Acc[J].elemKind()) +
                      P.SegmentBytes - 1) /
                     P.SegmentBytes;
        Cost.GlobalTransactions += Tx;
        Cost.CoalescedTransactions += Tx; // contiguous result write
        PerSeg[J].push_back(Acc[J]);
      }
    }

    for (int I = static_cast<int>(Grid.size()) - 1; I >= 0; --I) {
      if (++Idx[I] < Grid[I])
        break;
      Idx[I] = 0;
    }
  }
  if (!WarpTraces.empty()) {
    Trace = nullptr;
    mergeWarp(WarpTraces);
  }

  // Assemble.
  std::vector<Value> Out;
  for (size_t J = 0; J < NumRes; ++J) {
    if (Grid.empty()) {
      Out.push_back(std::move(PerSeg[J][0]));
      continue;
    }
    if (NumSegs == 0) {
      Out.push_back(Value::array(K.RetTypes[J].elemKind(), Grid, {}));
      continue;
    }
    FUT_TRY(Flat, assembleArray(PerSeg[J]));
    std::vector<int64_t> Shape = Grid;
    const Value &First = PerSeg[J][0];
    if (First.isArray())
      Shape.insert(Shape.end(), First.shape().begin(),
                   First.shape().end());
    std::vector<PrimValue> Data = Flat.flat();
    Out.push_back(Value::array(Flat.elemKind(), std::move(Shape),
                               std::move(Data)));
  }
  return Out;
}

ErrorOr<std::vector<Value>> KernelSim::runSegHist() {
  // One thread per input element; a sharded launch covers only the
  // [OuterOffset, OuterOffset + OuterCount) element window.  Device 0 (or
  // the only device) folds into the destination itself; other shards fold
  // into a neutral-filled partial the caller merges with the operator.
  std::vector<int64_t> Grid;
  for (const SubExp &D : K.GridDims) {
    FUT_TRY(G, resolveInt(D));
    Grid.push_back(G);
  }
  if (OuterCount >= 0 && !Grid.empty())
    Grid[0] = OuterCount;
  int64_t Threads = 1;
  for (int64_t G : Grid)
    Threads *= G;

  FUT_TRY(W, resolveInt(K.HistWidth));
  auto DIt = HostEnv.find(K.HistDest);
  if (DIt == HostEnv.end())
    return CompilerError("histogram destination " + K.HistDest.str() +
                         " is not bound on the host");
  const Value &Dest = DIt->second;
  if (!Dest.isArray() || Dest.outerSize() != W)
    return CompilerError("histogram destination has wrong outer size");
  ScalarKind EK = Dest.elemKind();
  int64_t EB = elemBytes(EK);

  PrimValue NeutralPV;
  if (K.Neutral.size() != 1)
    return CompilerError("seghist kernel needs exactly one neutral element");
  if (K.Neutral[0].isConst()) {
    NeutralPV = K.Neutral[0].getConst();
  } else {
    auto It = HostEnv.find(K.Neutral[0].getVar());
    if (It == HostEnv.end())
      return CompilerError("kernel neutral element is unbound");
    NeutralPV = It->second.getScalar();
  }

  std::vector<PrimValue> Bins;
  if (OuterOffset == 0) {
    Bins = Dest.flat();
    // Priming the bins reads the whole destination once, coalesced.
    int64_t InitTx = (W * EB + P.SegmentBytes - 1) / P.SegmentBytes;
    Cost.GlobalAccesses += W;
    Cost.GlobalTransactions += InitTx;
    Cost.CoalescedTransactions += InitTx;
  } else {
    Bins.assign(static_cast<size_t>(W), NeutralPV);
  }

  // Lowering strategy (bit-identical results either way, different cost
  // profile): narrow histograms keep a subhistogram per workgroup in local
  // memory and merge once at the end; wide ones use global atomics whose
  // cost grows with same-segment conflicts inside a warp batch.
  const bool UseLocal = W <= P.HistLocalWidthMax;
  int64_t NumGroups =
      (Threads + P.WorkgroupSize - 1) / std::max(1, P.WorkgroupSize);

  static const Program Empty;
  Interpreter RedInterp(Empty);

  TEnv Base;
  for (size_t I = 0; I < K.Inputs.size(); ++I) {
    GlobalView G;
    G.InputIdx = static_cast<int>(I);
    Base[K.Inputs[I].Arr] = TValue::view(G);
  }

  // Global-atomic strategy: batch the destination segments one warp's
  // updates hit; unique segments each cost a transaction, extra lanes on
  // an already-hit segment serialise as conflicts.
  std::vector<int64_t> WarpSegs;
  auto FlushAtomics = [&] {
    if (WarpSegs.empty())
      return;
    int64_t Lanes = static_cast<int64_t>(WarpSegs.size());
    std::sort(WarpSegs.begin(), WarpSegs.end());
    int64_t Unique = std::unique(WarpSegs.begin(), WarpSegs.end()) -
                     WarpSegs.begin();
    Cost.AtomicTransactions += Unique;
    Cost.AtomicConflicts += Lanes - Unique;
    WarpSegs.clear();
  };

  // Local-subhistogram strategy: the simulator knows which scratchpad bin
  // every lane updates, so bank conflicts are observable on this path —
  // lanes of one warp batch whose bins share a bank serialise.  Profile
  // only (the pipeline cost model charges it); the roofline charge stays
  // the plain scratchpad access count.
  std::vector<int64_t> WarpBanks;
  auto FlushBanks = [&] {
    if (WarpBanks.empty())
      return;
    int64_t Lanes = static_cast<int64_t>(WarpBanks.size());
    std::sort(WarpBanks.begin(), WarpBanks.end());
    int64_t Unique = std::unique(WarpBanks.begin(), WarpBanks.end()) -
                     WarpBanks.begin();
    Prof.BankConflictExtra += Lanes - Unique;
    WarpBanks.clear();
  };

  std::vector<std::vector<uint64_t>> WarpTraces;
  std::vector<int64_t> Idx(Grid.size(), 0);
  for (int64_t T = 0; T < Threads; ++T) {
    WarpTraces.emplace_back();
    Trace = &WarpTraces.back();
    beginLane();

    TEnv Env = Base;
    for (size_t I = 0; I < Grid.size(); ++I)
      Env[K.ThreadIndices[I]] = TValue(Value::scalar(PrimValue::makeI32(
          static_cast<int32_t>(Idx[I] + (I == 0 ? OuterOffset : 0)))));

    FUT_TRY(Res, evalBody(K.ThreadBody, std::move(Env)));
    if (Res.size() != 2)
      return CompilerError("seghist thread result arity mismatch");
    FUT_TRY(BinV, force(Res[0]));
    FUT_TRY(Val, force(Res[1]));
    if (!BinV.isScalar() || !Val.isScalar())
      return CompilerError("seghist thread body must produce (bin, value)");
    int64_t Bin = BinV.getScalar().asInt64();
    // The value is computed before the bounds check (matching the
    // interpreter); out-of-range bins update nothing.
    if (Bin >= 0 && Bin < W) {
      std::vector<Value> Args{Value::scalar(Bins[Bin]), Val};
      FUT_TRY(Comb, RedInterp.evalLambda(K.ReduceFn, Args, {}));
      if (Comb.size() != 1 || !Comb[0].isScalar())
        return CompilerError("seghist operator must produce one scalar");
      Bins[static_cast<size_t>(Bin)] = Comb[0].getScalar();
      Cost.ComputeOps += ReduceFnOps;
      if (UseLocal) {
        Cost.LocalAccesses += 2; // scratchpad read-modify-write
        WarpBanks.push_back(Bin % std::max(1, P.LocalMemBanks));
      } else {
        WarpSegs.push_back(Bin * EB / P.SegmentBytes);
      }
    }

    if (WarpTraces.size() == static_cast<size_t>(P.WarpSize) ||
        T == Threads - 1) {
      Trace = nullptr;
      mergeWarp(WarpTraces);
      WarpTraces.clear();
      FlushAtomics();
      FlushBanks();
    }

    for (int I = static_cast<int>(Grid.size()) - 1; I >= 0; --I) {
      if (++Idx[I] < Grid[I])
        break;
      Idx[I] = 0;
    }
  }
  Trace = nullptr;
  FlushAtomics();
  FlushBanks();

  // Local strategy: each workgroup flushes its subhistogram into the
  // global one with a coalesced atomic pass over all W bins (consecutive
  // lanes hit consecutive bins, so there are no same-segment conflicts).
  if (UseLocal && Threads > 0) {
    int64_t MergeTx = (W * EB + P.SegmentBytes - 1) / P.SegmentBytes;
    Cost.AtomicTransactions += NumGroups * MergeTx;
  }

  Value OutV = Value::array(EK, {W}, std::move(Bins));
  FUT_CHECK(chargeOutput(OutV));
  std::vector<Value> Out;
  Out.push_back(std::move(OutV));
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Device
//===----------------------------------------------------------------------===//

namespace {

/// One attempt to run the program with kernels on the simulated device.
/// Transient per-kernel faults are retried in place; persistent failures
/// (OOM, watchdog, retries exhausted) surface as typed runtime errors.
/// \p Cost accumulates across the attempt and is left populated even on
/// failure, so the caller can charge the aborted device work to a fallback
/// run.
ErrorOr<RunResult> runDeviceAttempt(const DeviceParams &P,
                                    const ResilienceParams &R,
                                    FaultPlan &Plan, CostReport &Cost,
                                    const Program &Prog,
                                    const std::string &Fun,
                                    const std::vector<Value> &Args,
                                    const mem::FunPlan *MPlan,
                                    const shard::FunShardPlan *SPlan,
                                    int NumDevices) {
  const FunDef *F = Prog.findFun(Fun);
  if (!F)
    return CompilerError("unknown function " + Fun);

  // Costing is pluggable (CostModel.h): the selected model's estimate is
  // what gets charged, but both models price every launch from the same
  // counters — the comparison is nearly free and gives every run its own
  // calibration pair.  Device::run validated the name; the roofline
  // fallback only covers direct callers that skipped validation.
  const CostModel *NamedCM = CostModel::byName(P.CostModelName);
  const CostModel &CM = NamedCM ? *NamedCM : CostModel::roofline();
  Cost.CostModelUsed = CM.name();

  struct LaunchPrice {
    double Roofline = 0, Pipeline = 0, Selected = 0;
  };
  auto PriceLaunch = [&](const CostReport &KCost,
                         const KernelProfile &KProf) {
    LaunchPrice LP;
    LP.Roofline = CostModel::roofline().kernelCycles(P, KCost, KProf);
    LP.Pipeline = CostModel::pipeline().kernelCycles(P, KCost, KProf);
    LP.Selected = &CM == &CostModel::pipeline() ? LP.Pipeline : LP.Roofline;
    return LP;
  };
  // Charged only for launches that complete (watchdog-killed launches
  // charge their budget to KernelCycles, exactly as before).
  auto ChargeModelTotals = [&](const LaunchPrice &LP,
                               const KernelProfile &KProf) {
    Cost.RooflineKernelCycles += LP.Roofline;
    Cost.PipelineKernelCycles += LP.Pipeline;
    Cost.WarpsSimulated += KProf.Warps;
    Cost.DivergentWarps += KProf.DivergentWarps;
    Cost.CoalescerExcessTx += KProf.CoalescerExcessTx;
    Cost.BankConflictExtra += KProf.BankConflictExtra;
    trace::counter("device.cycles_roofline",
                   static_cast<int64_t>(LP.Roofline));
    trace::counter("device.cycles_pipeline",
                   static_cast<int64_t>(LP.Pipeline));
  };

  // Names whose host copy is current.  In asynchronous mode residency is
  // dual: uploading keeps the host copy valid and a readback keeps the
  // device copy valid.  In --sync mode the pre-async model is reproduced
  // exactly: an upload invalidates the host copy and a readback releases
  // the device one (the phantom re-upload the buffer manager fixes).
  NameSet HostValid;
  NameSet ParamNames;
  for (const Param &Prm : F->Params) {
    HostValid.insert(Prm.Name);
    ParamNames.insert(Prm.Name);
  }

  InterpOptions Opts;
  Opts.ConsumeOnUpdate = true;

  const bool Async = P.AsyncTimeline;
  // Sharded execution needs the asynchronous per-device timelines; under
  // --sync (or without a plan) the group degenerates to one device, which
  // behaves bit-for-bit like the plain single-device model.
  const int NumDev = (Async && SPlan) ? std::max(1, NumDevices) : 1;
  DeviceGroup DG(NumDev);
  EngineTimeline &TL = DG.dev(0);
  // On a shared (multi-tenant) device the run only sees the capacity left
  // after co-resident tenants' admission reservations.
  const int64_t MemCap = P.effectiveMemBytes();
  DeviceBufferManager Mgr(MemCap);
  Mgr.setPlan(MPlan);
  LivenessInfo Liveness(Prog);

  auto &TS = trace::TraceSession::global();
  TS.setThreadName(trace::kCopyEngineTid, "copy-engine");
  TS.setThreadName(trace::kComputeEngineTid, "compute-engine");
  for (int D = 1; D < NumDev; ++D) {
    TS.setThreadName(trace::deviceCopyTid(D),
                     "dev" + std::to_string(D) + "-copy-engine");
    TS.setThreadName(trace::deviceComputeTid(D),
                     "dev" + std::to_string(D) + "-compute-engine");
  }

  // Shard lookup by kernel expression: the interpreter evaluates the very
  // Exp nodes the plan was derived from, so pointer identity maps each
  // launch to its planned shard (the liveness analysis relies on the same
  // property).
  std::unordered_map<const KernelExp *, const shard::KernelShard *> ShardOf;
  if (NumDev > 1 && SPlan)
    shard::forEachKernel(
        *F, [&](const KernelExp &K, const Stm &, int Id, bool) {
          if (const shard::KernelShard *KS = SPlan->kernel(Id))
            ShardOf[&K] = KS;
        });

  // Runtime distribution state of device arrays (multi-device only):
  // an array is block-partitioned (each device owns a contiguous row
  // block, with per-device ready times), replicated on every device, or
  // — the default — whole on device 0.
  struct DistInfo {
    std::vector<std::pair<int64_t, int64_t>> Cuts;
    std::vector<double> Ready;
  };
  NameMap<DistInfo> PartitionedArrs;
  NameSet ReplicatedArrs;
  // Output distribution of the sharded launch currently returning, applied
  // to the bound pattern names in OnBind.
  DistInfo PendingOutDist;
  bool HavePendingOutDist = false;

  // One span per planned slab, so the arena layout is inspectable in the
  // exported trace alongside the kernels that use it.
  if (MPlan)
    for (const mem::SlabInfo &SI : MPlan->Slabs) {
      trace::ScopedSpan Span("memplan:slab" + std::to_string(SI.Id),
                             "memplan");
      Span.arg("bytes", SI.Bytes);
      Span.arg("hoisted", static_cast<int64_t>(SI.Hoisted ? 1 : 0));
      if (SI.Bytes < 0)
        Span.arg("size", SI.SizeExpr);
    }

  // Mirrors the buffer manager's byte accounting into the report after
  // every allocation event, so an aborted attempt still reports its
  // memory history.
  auto SyncMemStats = [&] {
    Cost.PeakDeviceBytes = Mgr.peakBytes();
    Cost.FreedBytes = Mgr.freedBytes();
    Cost.FreeListHits = Mgr.freeListHits();
    if (Mgr.planMode()) {
      // The plan-derived bound, not the live counter peakBytes() already
      // feeds into PeakDeviceBytes: asserting observed <= planned is a
      // genuine cross-check of the static layout against residency.
      Cost.PlannedPeakBytes = Mgr.plannedPeakBytes();
      Cost.HoistedAllocs = Mgr.hoistedAllocs();
      Cost.ReusedBlocks = Mgr.reusedBlocks();
    }
  };

  // Simulated end of the most recent kernel command: the ready-time of
  // the buffers it produced (registered by name in OnBind below).
  double LastKernelReady = 0;

  // The run-level watchdog sees all simulated time spent so far: the
  // two-engine makespan in asynchronous mode, the serial sum in --sync
  // mode (HostCycles is normally derived at the end of the run, so
  // recompute it here).
  auto RunningCycles = [&] {
    if (Async)
      return DG.makespan();
    return Cost.KernelCycles + Cost.TransferCycles + Cost.RetryCycles +
           Cost.HostOps * P.HostCyclesPerOp;
  };

  Opts.OnExp = [&](const Exp &E, const NameMap<Value> &Env) {
    ++Cost.HostOps;
    TL.host(P.HostCyclesPerOp);
    // Host observation of device-resident arrays forces a transfer — but
    // only expressions that actually read array contents count; kernel
    // launches and pure aliasing do not.
    switch (E.kind()) {
    case ExpKind::Kernel:
    case ExpKind::SubExpE:
    case ExpKind::Loop:
    case ExpKind::If:
      return;
    default:
      break;
    }
    forEachFreeOperand(E, [&](const SubExp &S) {
      if (!S.isVar())
        return;
      auto It = Env.find(S.getVar());
      if (It == Env.end() || !It->second.isArray())
        return;
      if (HostValid.count(S.getVar()))
        return;
      int64_t Bytes =
          It->second.numElems() * elemBytes(It->second.elemKind());
      if (NumDev > 1) {
        auto PIt = PartitionedArrs.find(S.getVar());
        if (PIt != PartitionedArrs.end()) {
          // Host gather of a block-partitioned array: each owning device
          // downloads its rows in parallel; the host blocks until the
          // slowest block lands.  TransferCycles carries the serial sum
          // of the block charges (== the full array).
          const DistInfo &DI = PIt->second;
          int64_t W = DI.Cuts.empty() ? 1 : DI.Cuts.back().second;
          DG.syncHostClocks();
          for (int D = 0; D < NumDev && D < static_cast<int>(DI.Cuts.size());
               ++D) {
            int64_t Len = DI.Cuts[D].second - DI.Cuts[D].first;
            if (Len <= 0)
              continue;
            int64_t BlockBytes = W > 0 ? Bytes / W * Len : Bytes;
            double BCycles = BlockBytes / P.TransferBytesPerCycle;
            Cost.TransferredBytes += BlockBytes;
            Cost.TransferCycles += BCycles;
            double Ready = D < static_cast<int>(DI.Ready.size())
                               ? DI.Ready[D]
                               : 0;
            ScheduledCmd BD = DG.dev(D).download(BCycles, Ready);
            trace::ScopedSpan XSpan("xfer:readback", "device",
                                    trace::deviceCopyTid(D));
            XSpan.arg("array", S.getVar().str());
            XSpan.arg("bytes", BlockBytes);
            XSpan.arg("cycles", BCycles);
            XSpan.arg("sim_start", BD.Start);
            XSpan.arg("sim_end", BD.End);
          }
          DG.syncHostClocks();
          HostValid.insert(S.getVar());
          SyncMemStats();
          return;
        }
      }
      Cost.TransferredBytes += Bytes;
      double Cycles = Bytes / P.TransferBytesPerCycle;
      Cost.TransferCycles += Cycles;
      // The host blocks on the readback, but the compute engine keeps
      // draining: a buffer that was ready early downloads under a later
      // in-flight kernel.  A name the manager cannot attribute to a
      // producing command conservatively waits for the compute queue.
      double Ready = Mgr.tracked(S.getVar()) ? Mgr.readyAt(S.getVar())
                                             : TL.computeFreeTime();
      ScheduledCmd D = TL.download(Cycles, Ready);
      {
        trace::ScopedSpan XSpan("xfer:readback", "device",
                                trace::kCopyEngineTid);
        XSpan.arg("array", S.getVar().str());
        XSpan.arg("bytes", Bytes);
        XSpan.arg("cycles", Cycles);
        XSpan.arg("sim_start", D.Start);
        XSpan.arg("sim_end", D.End);
      }
      if (Async && D.OverlappedOtherEngine)
        TS.instant("engine-overlap", "device", trace::kCopyEngineTid);
      HostValid.insert(S.getVar());
      // In the serial model, reading the array back released its device
      // allocation (and a later kernel use re-uploaded it); with dual
      // residency the device copy stays valid.
      if (!Async)
        Mgr.invalidateDevice(S.getVar());
      SyncMemStats();
    });
  };

  Opts.OnBind = [&](const Stm &S, const std::vector<Value> &Vals) {
    if (expDynCast<KernelExp>(S.E.get())) {
      // Kernel results become device-resident buffers under their bound
      // names, ready when the kernel command completes.  Rebinding a name
      // (loop iterations) releases the previous iteration's buffer — the
      // liveness half of the leak fix.  Capacity was already checked
      // against the lump sum in HandleKernel.
      for (size_t I = 0; I < S.Pat.size() && I < Vals.size(); ++I) {
        const Value &V = Vals[I];
        if (!V.isArray())
          continue;
        int64_t Bytes = V.numElems() * elemBytes(V.elemKind());
        Mgr.bind(S.Pat[I].Name, Bytes, LastKernelReady);
        HostValid.erase(S.Pat[I].Name);
        if (NumDev > 1) {
          // Rebinding invalidates any previous distribution; a sharded
          // launch leaves its outputs block-partitioned.
          PartitionedArrs.erase(S.Pat[I].Name);
          ReplicatedArrs.erase(S.Pat[I].Name);
          if (HavePendingOutDist)
            PartitionedArrs[S.Pat[I].Name] = PendingOutDist;
        }
      }
      HavePendingOutDist = false;
      SyncMemStats();
      return;
    }
    if (const auto *SE = expDynCast<SubExpExp>(S.E.get())) {
      // let y = x: y shares x's device allocation (refcounted).
      if (SE->Val.isVar() && S.Pat.size() == 1) {
        Mgr.alias(S.Pat[0].Name, SE->Val.getVar());
        if (NumDev > 1) {
          // The alias shares the source's distribution.
          auto PIt = PartitionedArrs.find(SE->Val.getVar());
          if (PIt != PartitionedArrs.end())
            PartitionedArrs[S.Pat[0].Name] = PIt->second;
          else
            PartitionedArrs.erase(S.Pat[0].Name);
          if (ReplicatedArrs.count(SE->Val.getVar()))
            ReplicatedArrs.insert(S.Pat[0].Name);
          else
            ReplicatedArrs.erase(S.Pat[0].Name);
        }
        return;
      }
    }
    // Any other binding produces its value on the host: a stale device
    // buffer under the same name (a loop-body rebinding) is released.
    for (const Param &Prm : S.Pat) {
      if (NumDev > 1) {
        PartitionedArrs.erase(Prm.Name);
        ReplicatedArrs.erase(Prm.Name);
      }
      if (Mgr.tracked(Prm.Name)) {
        Mgr.release(Prm.Name);
        SyncMemStats();
      }
    }
  };

  NameSet ManifestedTransposes;

  Opts.HandleKernel =
      [&](const KernelExp &K,
          const NameMap<Value> &Env) -> ErrorOr<std::vector<Value>> {
    if (P.WatchdogTotalCycles > 0 && RunningCycles() > P.WatchdogTotalCycles) {
      ++Cost.WatchdogKills;
      return CompilerError::watchdog(
          "run killed by watchdog: " +
          std::to_string(static_cast<int64_t>(RunningCycles())) +
          " simulated cycles exceed the total budget of " +
          std::to_string(static_cast<int64_t>(P.WatchdogTotalCycles)));
    }

    // Liveness-driven sweep: device buffers no later statement (and not
    // this kernel) can reach are released before allocating anything new.
    // This is the leak fix — intermediates consumed only by earlier
    // kernels used to stay resident until a host readback.
    if (const NameSet *Live = Liveness.liveAfter(&K)) {
      NameSet Keep = *Live;
      for (const KernelExp::KInput &In : K.Inputs)
        Keep.insert(In.Arr);
      Mgr.freeDead(Keep);
      SyncMemStats();
    }

    // Resolve this launch against the shard plan: a planned-sharded kernel
    // whose runtime outer width exceeds one row is split over the device
    // group with the canonical block cuts; everything else runs whole on
    // device 0, exactly as before.
    const shard::KernelShard *KS = nullptr;
    int64_t ShardW = -1;
    if (NumDev > 1) {
      auto SIt = ShardOf.find(&K);
      if (SIt != ShardOf.end() && SIt->second->Sharded) {
        const SubExp &WS = SIt->second->Width;
        if (WS.isConst()) {
          ShardW = WS.getConst().asInt64();
        } else {
          auto WIt = Env.find(WS.getVar());
          if (WIt != Env.end() && !WIt->second.isArray())
            ShardW = WIt->second.getScalar().asInt64();
        }
        if (ShardW > 1)
          KS = SIt->second;
      }
    }
    const bool DoShard = KS != nullptr;
    std::vector<std::pair<int64_t, int64_t>> Cuts;
    if (DoShard)
      Cuts = shard::blockCuts(ShardW, NumDev);

    auto InputBytes = [&](const VName &Arr) -> int64_t {
      auto It = Env.find(Arr);
      if (It == Env.end() || !It->second.isArray())
        return 0;
      return It->second.numElems() * elemBytes(It->second.elemKind());
    };

    // One inter-device hop: the receiving device's copy engine pulls the
    // bytes once the source block is ready on its producing device.
    auto InterDev = [&](int Dst, int64_t Bytes, double SrcReady,
                        const char *What, const VName &Arr) {
      double Cycles = Bytes / P.TransferBytesPerCycle;
      Cost.InterDeviceBytes += Bytes;
      Cost.InterDeviceCycles += Cycles;
      Cost.TransferredBytes += Bytes;
      Cost.TransferCycles += Cycles;
      ScheduledCmd C = DG.dev(Dst).recv(Cycles, SrcReady);
      trace::ScopedSpan XSpan(What, "device", trace::deviceCopyTid(Dst));
      XSpan.arg("array", Arr.str());
      XSpan.arg("bytes", Bytes);
      XSpan.arg("cycles", Cycles);
      XSpan.arg("sim_start", C.Start);
      XSpan.arg("sim_end", C.End);
      return C.End;
    };

    // Re-assemble block-partitioned inputs this launch cannot consume in
    // place: a broadcast (or unsharded, or width-mismatched) consumer
    // needs the whole array — an all-gather onto every device when the
    // launch is sharded, onto device 0 alone otherwise.  These are exactly
    // the plan's TransferEdges, now costed on the copy engines.
    if (NumDev > 1)
      for (const KernelExp::KInput &In : K.Inputs) {
        auto PIt = PartitionedArrs.find(In.Arr);
        if (PIt == PartitionedArrs.end())
          continue;
        const shard::ShardInput *SI =
            DoShard ? KS->findInput(In.Arr) : nullptr;
        if (SI && SI->Class == shard::InputClass::Aligned &&
            PIt->second.Cuts == Cuts)
          continue; // consumed in place, block for block
        DistInfo DI = PIt->second;
        int64_t Bytes = InputBytes(In.Arr);
        int64_t W = DI.Cuts.empty() ? 1 : DI.Cuts.back().second;
        double AllReady = Mgr.readyAt(In.Arr);
        for (double Rd : DI.Ready)
          AllReady = std::max(AllReady, Rd);
        DG.syncHostClocks();
        double MaxEnd = AllReady;
        int NumDst = DoShard ? NumDev : 1;
        for (int Dst = 0; Dst < NumDst; ++Dst) {
          int64_t Own = Dst < static_cast<int>(DI.Cuts.size())
                            ? DI.Cuts[Dst].second - DI.Cuts[Dst].first
                            : 0;
          int64_t Miss = Bytes - (W > 0 ? Bytes / W * Own : 0);
          if (Miss <= 0)
            continue;
          MaxEnd = std::max(MaxEnd, InterDev(Dst, Miss, AllReady,
                                             "xfer:all-gather", In.Arr));
        }
        PartitionedArrs.erase(In.Arr);
        if (DoShard)
          ReplicatedArrs.insert(In.Arr);
        Mgr.setReady(In.Arr, MaxEnd);
        trace::counter("device.shard_gathers");
      }

    // Inputs whose representation was changed by the coalescing pass are
    // manifested by a transposition in memory, once per array (Section
    // 5.2): one extra launch plus a read and a semi-coalesced write of
    // every element.
    for (const KernelExp::KInput &In : K.Inputs) {
      if (isIdentityPerm(In.LayoutPerm) ||
          ManifestedTransposes.count(In.Arr))
        continue;
      auto It = Env.find(In.Arr);
      if (It == Env.end())
        continue;
      ManifestedTransposes.insert(In.Arr);
      int64_t Elems = It->second.numElems();
      int64_t Bytes = Elems * elemBytes(It->second.elemKind());
      // Tiled transpose: reads coalesced, writes ~2x segment traffic.
      int64_t Tx = 3 * Bytes / P.SegmentBytes + 1;
      Cost.GlobalTransactions += Tx;
      Cost.CoalescedTransactions += Tx; // tiled transposes stay coalesced
      Cost.GlobalAccesses += 2 * Elems;
      ++Cost.KernelLaunches;
      // A manifestation is a synthetic all-memory launch: cost it through
      // the model with transaction counters only (no warps simulated).
      CostReport TCost;
      TCost.GlobalTransactions = Tx;
      KernelProfile TProf;
      LaunchPrice TP = PriceLaunch(TCost, TProf);
      ChargeModelTotals(TP, TProf);
      double TCycles = TP.Selected;
      Cost.KernelCycles += TCycles;
      // Under the default model the engine occupancy is written as the
      // raw transaction term, not (launch + term) - launch: the two are
      // not bit-equal in floating point, and default timelines are pinned
      // byte-identical to the pre-CostModel simulator.
      double TExec = &CM == &CostModel::roofline()
                         ? Tx / P.GlobalTxPerCycle
                         : TCycles - P.LaunchCycles;
      ScheduledCmd TC =
          TL.kernel(Mgr.readyAt(In.Arr), P.LaunchCycles,
                    P.PipelinedLaunchFraction, TExec);
      Mgr.setReady(In.Arr, TC.End);
      LastKernelReady = TC.End;
      {
        trace::ScopedSpan TSpan("kernel:transpose", "device",
                                trace::kComputeEngineTid);
        TSpan.arg("array", In.Arr.str());
        TSpan.arg("cycles", TCycles);
        TSpan.arg("global_tx", Tx);
        TSpan.arg("coalesced_tx", Tx);
        TSpan.arg("scattered_tx", static_cast<int64_t>(0));
        TSpan.arg("sim_start", TC.Start);
        TSpan.arg("sim_end", TC.End);
      }
      if (Async && TC.OverlappedOtherEngine)
        TS.instant("engine-overlap", "device", trace::kComputeEngineTid);
      trace::counter("device.kernel_launches");
      trace::counter("device.global_tx", Tx);
      trace::counter("device.coalesced_tx", Tx);
    }

    // Upload inputs whose device copy is missing or stale.  The first
    // upload of a program input is excluded from the measured time, like
    // the paper's harness (and bypasses the timeline for the same
    // reason).  With dual residency a read-back buffer is still device
    // valid, so re-using it on the device costs nothing — the phantom
    // re-upload only exists in --sync mode.
    for (const KernelExp::KInput &In : K.Inputs) {
      if (!HostValid.count(In.Arr))
        continue;
      auto It = Env.find(In.Arr);
      if (It == Env.end())
        continue;
      if (Async && Mgr.deviceValid(In.Arr))
        continue;
      int64_t Bytes =
          It->second.numElems() * elemBytes(It->second.elemKind());
      if (!Mgr.bind(In.Arr, Bytes, 0))
        return CompilerError::deviceOOM(
            "device out of memory uploading " + In.Arr.str() + ": " +
            std::to_string(Bytes) + " bytes needed, " +
            std::to_string(MemCap - Mgr.liveBytes()) + " of " +
            std::to_string(MemCap) + " free (" +
            std::to_string(P.ReservedBytes) +
            " reserved by co-tenants)");
      Cost.TransferredBytes += Bytes;
      double Cycles = Bytes / P.TransferBytesPerCycle;
      const shard::ShardInput *UploadSI = DoShard ? KS->findInput(In.Arr)
                                                  : nullptr;
      if (UploadSI && UploadSI->Class == shard::InputClass::Aligned) {
        // Block-partitioned upload: each device's copy engine receives
        // only its own rows, in parallel.  The serial charge (the sum of
        // the block charges) equals the whole array's, so the serial-sum
        // bound is unchanged.
        DistInfo DI;
        DI.Cuts = Cuts;
        DI.Ready.assign(NumDev, 0);
        if (ParamNames.count(In.Arr)) {
          Cost.ExcludedTransferCycles += Cycles;
        } else {
          DG.syncHostClocks();
          double MaxEnd = 0;
          for (int D = 0; D < NumDev; ++D) {
            int64_t Len = Cuts[D].second - Cuts[D].first;
            if (Len <= 0)
              continue;
            int64_t BlockBytes = Bytes / ShardW * Len;
            double BCycles = BlockBytes / P.TransferBytesPerCycle;
            Cost.TransferCycles += BCycles;
            ScheduledCmd U = DG.dev(D).upload(BCycles);
            DI.Ready[D] = U.End;
            MaxEnd = std::max(MaxEnd, U.End);
            trace::ScopedSpan XSpan("xfer:upload", "device",
                                    trace::deviceCopyTid(D));
            XSpan.arg("array", In.Arr.str());
            XSpan.arg("bytes", BlockBytes);
            XSpan.arg("cycles", BCycles);
            XSpan.arg("sim_start", U.Start);
            XSpan.arg("sim_end", U.End);
          }
          Mgr.setReady(In.Arr, MaxEnd);
        }
        ReplicatedArrs.erase(In.Arr);
        PartitionedArrs[In.Arr] = DI;
        SyncMemStats();
        continue;
      }
      if (ParamNames.count(In.Arr)) {
        Cost.ExcludedTransferCycles += Cycles;
      } else {
        Cost.TransferCycles += Cycles;
        ScheduledCmd U = TL.upload(Cycles);
        Mgr.setReady(In.Arr, U.End);
        {
          trace::ScopedSpan XSpan("xfer:upload", "device",
                                  trace::kCopyEngineTid);
          XSpan.arg("array", In.Arr.str());
          XSpan.arg("bytes", Bytes);
          XSpan.arg("cycles", Cycles);
          XSpan.arg("sim_start", U.Start);
          XSpan.arg("sim_end", U.End);
        }
        if (Async && U.OverlappedOtherEngine)
          TS.instant("engine-overlap", "device", trace::kCopyEngineTid);
      }
      if (!Async)
        HostValid.erase(In.Arr);
      SyncMemStats();
    }

    // A sharded launch's remaining distribution fixups: broadcast inputs
    // that only device 0 holds are replicated dev0 -> all, and aligned
    // inputs produced whole on device 0 are scattered block by block.
    if (DoShard) {
      for (const KernelExp::KInput &In : K.Inputs) {
        const shard::ShardInput *SI = KS->findInput(In.Arr);
        if (!SI || PartitionedArrs.count(In.Arr) ||
            ReplicatedArrs.count(In.Arr))
          continue;
        int64_t Bytes = InputBytes(In.Arr);
        if (Bytes <= 0)
          continue;
        double SrcReady = Mgr.readyAt(In.Arr);
        DG.syncHostClocks();
        if (SI->Class == shard::InputClass::Broadcast) {
          double MaxEnd = SrcReady;
          for (int Dst = 1; Dst < NumDev; ++Dst)
            MaxEnd = std::max(MaxEnd, InterDev(Dst, Bytes, SrcReady,
                                               "xfer:broadcast", In.Arr));
          ReplicatedArrs.insert(In.Arr);
          Mgr.setReady(In.Arr, MaxEnd);
        } else {
          DistInfo DI;
          DI.Cuts = Cuts;
          DI.Ready.assign(NumDev, SrcReady);
          double MaxEnd = SrcReady;
          for (int Dst = 1; Dst < NumDev; ++Dst) {
            int64_t Len = Cuts[Dst].second - Cuts[Dst].first;
            if (Len <= 0)
              continue;
            int64_t BlockBytes = Bytes / ShardW * Len;
            double End = InterDev(Dst, BlockBytes, SrcReady, "xfer:scatter",
                                  In.Arr);
            DI.Ready[Dst] = End;
            MaxEnd = std::max(MaxEnd, End);
          }
          PartitionedArrs[In.Arr] = DI;
          Mgr.setReady(In.Arr, MaxEnd);
        }
      }
    }

    // The launch depends on every input's device copy being ready.
    double DepsReady = 0;
    for (const KernelExp::KInput &In : K.Inputs)
      DepsReady = std::max(DepsReady, Mgr.readyAt(In.Arr));

    // Per-device dependencies of a sharded launch: a block-partitioned
    // aligned input gates each device only on its own block; everything
    // else gates every device on the whole array.
    std::vector<double> DevDeps;
    if (DoShard) {
      DevDeps.assign(NumDev, 0);
      for (const KernelExp::KInput &In : K.Inputs) {
        auto PIt = PartitionedArrs.find(In.Arr);
        const shard::ShardInput *SI = KS->findInput(In.Arr);
        if (PIt != PartitionedArrs.end() && SI &&
            SI->Class == shard::InputClass::Aligned &&
            PIt->second.Cuts == Cuts) {
          for (int D = 0; D < NumDev; ++D)
            DevDeps[D] = std::max(
                DevDeps[D], D < static_cast<int>(PIt->second.Ready.size())
                                ? PIt->second.Ready[D]
                                : 0);
        } else {
          double Rd = Mgr.readyAt(In.Arr);
          for (int D = 0; D < NumDev; ++D)
            DevDeps[D] = std::max(DevDeps[D], Rd);
        }
      }
    }

    // Launch, retrying transient injected faults with exponential
    // simulated-cycle backoff.
    int Retries = 0;
    auto ChargeBackoff = [&] {
      ++Retries;
      ++Cost.RetriedLaunches;
      double Backoff = R.RetryBackoffCycles * std::ldexp(1.0, Retries - 1);
      Cost.RetryCycles += Backoff;
      // A retry serialises the whole group: every engine on every device
      // drains, then the host spins for the backoff before re-issuing.
      DG.barrierAll(Backoff);
      trace::counter("device.retries");
      size_t I = TS.instant("retry-backoff", "device");
      TS.spanArg(I, "cycles", Backoff);
    };

    const char *SpanName = K.Op == KernelExp::OpKind::ThreadBody
                               ? "kernel:threadbody"
                               : K.Op == KernelExp::OpKind::SegScan
                                     ? "kernel:segscan"
                                     : K.Op == KernelExp::OpKind::SegHist
                                           ? "kernel:seghist"
                                           : "kernel:segreduce";

    for (;;) {
      if (Plan.nextLaunchFails()) {
        ++Cost.FaultsInjected;
        trace::counter("device.faults");
        trace::TraceSession::global().instant("fault:launch-failed",
                                              "device");
        if (Retries >= R.MaxRetries)
          return CompilerError::transientFault(
              "kernel launch failed persistently (" +
              std::to_string(Retries + 1) + " transient faults, " +
              std::to_string(R.MaxRetries) + " retries exhausted)");
        ChargeBackoff();
        continue;
      }

      if (DoShard) {
        // ---- Sharded launch: one logical kernel over the device group.
        // Each device simulates only its own row block (with global
        // thread indices and addresses), launches on its own compute
        // engine, and the blocks are concatenated back in device order —
        // bit-identical to the unsharded result.
        DG.syncHostClocks();
        std::vector<int> ActiveDevs;
        std::vector<std::vector<Value>> DevVals;
        std::vector<double> KTimes;
        std::vector<LaunchPrice> KPrices;
        std::vector<KernelProfile> KProfs;
        std::vector<CostReport> KCosts;
        double MaxKTime = 0;
        int64_t SumOutBytes = 0;
        for (int D = 0; D < NumDev; ++D) {
          int64_t Len = Cuts[D].second - Cuts[D].first;
          if (Len <= 0)
            continue;
          CostReport KCost;
          int64_t OutBudget = MemCap > 0 ? MemCap - Mgr.liveBytes() : -1;
          KernelSim Sim(P, K, Env, KCost, OutBudget);
          Sim.setOuterRange(Cuts[D].first, Len);
          auto Res = Sim.run();
          if (!Res)
            return Res; // evaluation errors / mid-kernel OOM: not transient
          SumOutBytes += Sim.outBytes();
          // Per-device working set: aligned inputs contribute their row
          // block, broadcast inputs their full size, plus this device's
          // output block.
          int64_t WS = Sim.outBytes();
          for (const KernelExp::KInput &In : K.Inputs) {
            int64_t B = InputBytes(In.Arr);
            const shard::ShardInput *SI = KS->findInput(In.Arr);
            if (SI && SI->Class == shard::InputClass::Aligned && ShardW > 0)
              WS += B / ShardW * Len;
            else
              WS += B;
          }
          DG.noteWorkingSet(D, WS);
          LaunchPrice LP = PriceLaunch(KCost, Sim.profile());
          double KTime = LP.Selected;
          ActiveDevs.push_back(D);
          DevVals.push_back(Res.take());
          KTimes.push_back(KTime);
          KPrices.push_back(LP);
          KProfs.push_back(Sim.profile());
          KCosts.push_back(KCost);
          MaxKTime = std::max(MaxKTime, KTime);
        }
        Cost.PeakDemandBytes =
            std::max(Cost.PeakDemandBytes, Mgr.liveBytes() + SumOutBytes);

        // The per-kernel watchdog sees the slowest shard: the logical
        // kernel is only done when every device's block is.
        if (P.WatchdogKernelCycles > 0 && MaxKTime > P.WatchdogKernelCycles) {
          ++Cost.WatchdogKills;
          ++Cost.KernelLaunches;
          Cost.KernelCycles += P.WatchdogKernelCycles;
          TL.kernel(DepsReady, 0, 0, P.WatchdogKernelCycles);
          trace::counter("device.kernel_launches");
          trace::counter("device.watchdog_kills");
          trace::TraceSession::global().instant("watchdog-kill", "device");
          return CompilerError::watchdog(
              "kernel killed by watchdog: " +
              std::to_string(static_cast<int64_t>(MaxKTime)) +
              " simulated cycles exceed the per-kernel budget of " +
              std::to_string(static_cast<int64_t>(P.WatchdogKernelCycles)));
        }

        ++Cost.ShardedLaunches;
        trace::counter("device.sharded_launches");
        double GroupEnd = 0;
        PendingOutDist.Cuts = Cuts;
        PendingOutDist.Ready.assign(NumDev, 0);
        for (size_t SId = 0; SId < ActiveDevs.size(); ++SId) {
          int D = ActiveDevs[SId];
          const CostReport &KCost = KCosts[SId];
          double KTime = KTimes[SId];
          Cost.KernelCycles += KTime;
          ++Cost.KernelLaunches;
          ScheduledCmd KC =
              DG.dev(D).kernel(DevDeps[D], P.LaunchCycles,
                               P.PipelinedLaunchFraction,
                               KTime - P.LaunchCycles);
          PendingOutDist.Ready[D] = KC.End;
          GroupEnd = std::max(GroupEnd, KC.End);
          ChargeModelTotals(KPrices[SId], KProfs[SId]);
          double TiledTx = static_cast<double>(KCost.TiledElementBytes) /
                           std::max(1, P.tileWidth()) / P.SegmentBytes;
          int64_t LaunchGlobalTx =
              KCost.GlobalTransactions + static_cast<int64_t>(TiledTx);
          int64_t LaunchCoalescedTx =
              KCost.CoalescedTransactions + static_cast<int64_t>(TiledTx);
          Cost.GlobalTransactions += LaunchGlobalTx;
          Cost.CoalescedTransactions += LaunchCoalescedTx;
          Cost.ScatteredTransactions += KCost.ScatteredTransactions;
          Cost.GlobalAccesses += KCost.GlobalAccesses;
          Cost.LocalAccesses += KCost.LocalAccesses;
          Cost.PrivateAccesses += KCost.PrivateAccesses;
          Cost.ComputeOps += KCost.ComputeOps;
          Cost.TiledElementTouches += KCost.TiledElementTouches;
          Cost.TiledElementBytes += KCost.TiledElementBytes;
          Cost.AtomicTransactions += KCost.AtomicTransactions;
          Cost.AtomicConflicts += KCost.AtomicConflicts;
          {
            trace::ScopedSpan KSpan(SpanName, "device",
                                    trace::deviceComputeTid(D));
            KSpan.arg("cycles", KTime);
            KSpan.arg("cycles_roofline", KPrices[SId].Roofline);
            KSpan.arg("cycles_pipeline", KPrices[SId].Pipeline);
            KSpan.arg("sim_start", KC.Start);
            KSpan.arg("sim_end", KC.End);
            KSpan.arg("shard_device", D);
            KSpan.arg("shard_rows", Cuts[D].second - Cuts[D].first);
            KSpan.arg("global_tx", LaunchGlobalTx);
            KSpan.arg("coalesced_tx", LaunchCoalescedTx);
            KSpan.arg("scattered_tx", KCost.ScatteredTransactions);
            KSpan.arg("local_accesses", KCost.LocalAccesses);
            KSpan.arg("private_accesses", KCost.PrivateAccesses);
            KSpan.arg("compute_ops", KCost.ComputeOps);
            if (KCost.AtomicTransactions || KCost.AtomicConflicts) {
              KSpan.arg("atomic_tx", KCost.AtomicTransactions);
              KSpan.arg("atomic_conflicts", KCost.AtomicConflicts);
            }
          }
          trace::counter("device.kernel_launches");
          trace::counter("device.global_tx", LaunchGlobalTx);
          trace::counter("device.coalesced_tx", LaunchCoalescedTx);
          trace::counter("device.scattered_tx", KCost.ScatteredTransactions);
          if (KCost.AtomicTransactions || KCost.AtomicConflicts) {
            trace::counter("device.atomic_tx", KCost.AtomicTransactions);
            trace::counter("device.atomic_conflicts",
                           KCost.AtomicConflicts);
          }
        }
        LastKernelReady = GroupEnd;

        // Detected result corruption: the whole logical launch must be
        // recomputed (one fault-plan draw, like the single-device path).
        if (Plan.nextResultCorrupted()) {
          ++Cost.FaultsInjected;
          trace::counter("device.faults");
          trace::TraceSession::global().instant("fault:result-corrupted",
                                                "device");
          if (Retries >= R.MaxRetries)
            return CompilerError::transientFault(
                "kernel results corrupted persistently (" +
                std::to_string(R.MaxRetries) + " retries exhausted)");
          ChargeBackoff();
          continue;
        }

        // A sharded histogram yields one full-width partial per device
        // (device 0 primed from the destination, the rest from the
        // neutral element).  Merging folds them with the operator in
        // device order — bit-identical to the unsharded result for the
        // commutative-and-associative operators the verifier admits —
        // and the merged array lives whole on device 0, so there is no
        // pending output distribution to re-gather later.
        if (K.Op == KernelExp::OpKind::SegHist) {
          static const Program Empty;
          Interpreter MergeInterp(Empty);
          std::vector<PrimValue> Merged = DevVals.front()[0].flat();
          ScalarKind EK = DevVals.front()[0].elemKind();
          int64_t EB = elemBytes(EK);
          double MergeReady = GroupEnd;
          for (size_t SId = 1; SId < ActiveDevs.size(); ++SId) {
            const std::vector<PrimValue> &Part = DevVals[SId][0].flat();
            for (size_t B = 0; B < Merged.size(); ++B) {
              std::vector<Value> MArgs{Value::scalar(Merged[B]),
                                       Value::scalar(Part[B])};
              auto Comb = MergeInterp.evalLambda(K.ReduceFn, MArgs, {});
              if (!Comb)
                return Comb.getError();
              if (Comb->size() != 1 || !(*Comb)[0].isScalar())
                return CompilerError(
                    "seghist merge operator must produce one scalar");
              Merged[B] = (*Comb)[0].getScalar();
            }
            // Device 0 pulls each partial over the interconnect before
            // folding it in.
            double End = InterDev(
                0, static_cast<int64_t>(Merged.size()) * EB,
                PendingOutDist.Ready[ActiveDevs[SId]], "xfer:hist-merge",
                K.HistDest);
            MergeReady = std::max(MergeReady, End);
          }
          PendingOutDist.Ready.clear();
          PendingOutDist.Cuts.clear();
          LastKernelReady = std::max(LastKernelReady, MergeReady);
          std::vector<int64_t> Shape = DevVals.front()[0].shape();
          std::vector<Value> Out;
          Out.push_back(
              Value::array(EK, std::move(Shape), std::move(Merged)));
          int64_t OutBytes = Out[0].numElems() * elemBytes(Out[0].elemKind());
          if (!Mgr.wouldFit(OutBytes))
            return CompilerError::deviceOOM(
                "device out of memory allocating kernel outputs: " +
                std::to_string(OutBytes) + " bytes needed, " +
                std::to_string(MemCap - Mgr.liveBytes()) + " of " +
                std::to_string(MemCap) + " free (" +
                std::to_string(P.ReservedBytes) +
                " reserved by co-tenants)");
          return Out;
        }

        // Stitch the per-device blocks back together along the outer
        // dimension; device order is row order.
        size_t NumRes = DevVals.front().size();
        std::vector<Value> Out;
        for (size_t J = 0; J < NumRes; ++J) {
          std::vector<int64_t> Shape = DevVals.front()[J].shape();
          ScalarKind EK = DevVals.front()[J].elemKind();
          std::vector<PrimValue> Data;
          for (const std::vector<Value> &DV : DevVals) {
            const std::vector<PrimValue> &Flat = DV[J].flat();
            Data.insert(Data.end(), Flat.begin(), Flat.end());
          }
          if (!Shape.empty())
            Shape[0] = ShardW;
          Out.push_back(Value::array(EK, std::move(Shape), std::move(Data)));
        }

        int64_t OutBytes = 0;
        for (const Value &V : Out)
          if (V.isArray())
            OutBytes += V.numElems() * elemBytes(V.elemKind());
        if (!Mgr.wouldFit(OutBytes))
          return CompilerError::deviceOOM(
              "device out of memory allocating kernel outputs: " +
              std::to_string(OutBytes) + " bytes needed, " +
              std::to_string(MemCap - Mgr.liveBytes()) + " of " +
              std::to_string(MemCap) + " free (" +
              std::to_string(P.ReservedBytes) +
              " reserved by co-tenants)");
        HavePendingOutDist = true;
        return Out;
      }

      trace::ScopedSpan KSpan(SpanName, "device", trace::kComputeEngineTid);
      CostReport KCost;
      int64_t OutBudget = MemCap > 0 ? MemCap - Mgr.liveBytes() : -1;
      KernelSim Sim(P, K, Env, KCost, OutBudget);
      auto Res = Sim.run();
      if (!Res)
        return Res; // evaluation errors and mid-kernel OOM are not transient

      // Transient demand of this launch: the inputs are still live while
      // the results materialise, so capacity must briefly hold both.  The
      // residency peaks (PeakDeviceBytes, PlannedPeakBytes) never see this
      // overlap — the serving layer's admission reservations are taken
      // from the demand peak, which does.
      Cost.PeakDemandBytes =
          std::max(Cost.PeakDemandBytes, Mgr.liveBytes() + Sim.outBytes());

      // Tiled traffic: each staged element is read once per tile from
      // global memory (coalesced), instead of once per thread.  The byte
      // count carries each element's real width — the old formula
      // hard-coded 4-byte elements and undercharged f64 tiles by 2x.
      // The cost models amortise by the same width internally; this copy
      // only feeds the transaction-counter merge below.
      double TiledTx =
          static_cast<double>(KCost.TiledElementBytes) /
          std::max(1, P.tileWidth()) / P.SegmentBytes;

      LaunchPrice LP = PriceLaunch(KCost, Sim.profile());
      double KTime = LP.Selected;

      // A kernel over its cycle budget is killed deterministically; the
      // cycles burned up to the kill point stay charged.
      if (P.WatchdogKernelCycles > 0 && KTime > P.WatchdogKernelCycles) {
        ++Cost.WatchdogKills;
        ++Cost.KernelLaunches;
        Cost.KernelCycles += P.WatchdogKernelCycles;
        // The killed kernel still occupied the compute engine until the
        // kill point.
        TL.kernel(DepsReady, 0, 0, P.WatchdogKernelCycles);
        // The span records the cycles actually charged, not the full
        // would-have-been kernel time, so span cycles still sum to
        // KernelCycles.
        KSpan.arg("cycles", P.WatchdogKernelCycles);
        KSpan.arg("killed", static_cast<int64_t>(1));
        trace::counter("device.kernel_launches");
        trace::counter("device.watchdog_kills");
        trace::TraceSession::global().instant("watchdog-kill", "device");
        return CompilerError::watchdog(
            "kernel killed by watchdog: " +
            std::to_string(static_cast<int64_t>(KTime)) +
            " simulated cycles exceed the per-kernel budget of " +
            std::to_string(static_cast<int64_t>(P.WatchdogKernelCycles)));
      }

      Cost.KernelCycles += KTime;
      ++Cost.KernelLaunches;
      ChargeModelTotals(LP, Sim.profile());
      ScheduledCmd KC = TL.kernel(DepsReady, P.LaunchCycles,
                                  P.PipelinedLaunchFraction,
                                  KTime - P.LaunchCycles);
      LastKernelReady = KC.End;
      int64_t LaunchGlobalTx =
          KCost.GlobalTransactions + static_cast<int64_t>(TiledTx);
      int64_t LaunchCoalescedTx =
          KCost.CoalescedTransactions + static_cast<int64_t>(TiledTx);
      Cost.GlobalTransactions += LaunchGlobalTx;
      Cost.CoalescedTransactions += LaunchCoalescedTx;
      Cost.ScatteredTransactions += KCost.ScatteredTransactions;
      Cost.GlobalAccesses += KCost.GlobalAccesses;
      Cost.LocalAccesses += KCost.LocalAccesses;
      Cost.PrivateAccesses += KCost.PrivateAccesses;
      Cost.ComputeOps += KCost.ComputeOps;
      Cost.TiledElementTouches += KCost.TiledElementTouches;
      Cost.TiledElementBytes += KCost.TiledElementBytes;
      Cost.AtomicTransactions += KCost.AtomicTransactions;
      Cost.AtomicConflicts += KCost.AtomicConflicts;

      KSpan.arg("cycles", KTime);
      KSpan.arg("cycles_roofline", LP.Roofline);
      KSpan.arg("cycles_pipeline", LP.Pipeline);
      KSpan.arg("sim_start", KC.Start);
      KSpan.arg("sim_end", KC.End);
      KSpan.arg("global_tx", LaunchGlobalTx);
      KSpan.arg("coalesced_tx", LaunchCoalescedTx);
      KSpan.arg("scattered_tx", KCost.ScatteredTransactions);
      KSpan.arg("local_accesses", KCost.LocalAccesses);
      KSpan.arg("private_accesses", KCost.PrivateAccesses);
      KSpan.arg("compute_ops", KCost.ComputeOps);
      if (KCost.AtomicTransactions || KCost.AtomicConflicts) {
        KSpan.arg("atomic_tx", KCost.AtomicTransactions);
        KSpan.arg("atomic_conflicts", KCost.AtomicConflicts);
      }
      trace::counter("device.kernel_launches");
      trace::counter("device.global_tx", LaunchGlobalTx);
      trace::counter("device.coalesced_tx", LaunchCoalescedTx);
      trace::counter("device.scattered_tx", KCost.ScatteredTransactions);
      if (KCost.AtomicTransactions || KCost.AtomicConflicts) {
        trace::counter("device.atomic_tx", KCost.AtomicTransactions);
        trace::counter("device.atomic_conflicts", KCost.AtomicConflicts);
      }
      if (Async && KC.OverlappedOtherEngine)
        TS.instant("engine-overlap", "device", trace::kComputeEngineTid);

      // Detected result corruption (ECC-style): the kernel ran — and was
      // charged — but its result must be recomputed.
      if (Plan.nextResultCorrupted()) {
        ++Cost.FaultsInjected;
        trace::counter("device.faults");
        trace::TraceSession::global().instant("fault:result-corrupted",
                                              "device");
        if (Retries >= R.MaxRetries)
          return CompilerError::transientFault(
              "kernel results corrupted persistently (" +
              std::to_string(R.MaxRetries) + " retries exhausted)");
        ChargeBackoff();
        continue;
      }

      // The results occupy device memory until released; the capacity
      // check is made here against the lump sum, the per-name bindings
      // happen in OnBind once the interpreter has bound the pattern.
      int64_t OutBytes = 0;
      for (const Value &V : *Res)
        if (V.isArray())
          OutBytes += V.numElems() * elemBytes(V.elemKind());
      if (!Mgr.wouldFit(OutBytes))
        return CompilerError::deviceOOM(
            "device out of memory allocating kernel outputs: " +
            std::to_string(OutBytes) + " bytes needed, " +
            std::to_string(MemCap - Mgr.liveBytes()) + " of " +
            std::to_string(MemCap) + " free (" +
            std::to_string(P.ReservedBytes) +
            " reserved by co-tenants)");
      return Res;
    }
  };

  Interpreter I(Prog, Opts);
  auto Out = I.runFunction(Fun, Args);
  if (!Out)
    return Out.getError();

  // Download results that are still device-resident (excluded from the
  // measured time, like the paper's harness).  A variable returned in
  // several result positions is one buffer and downloads once — the old
  // loop charged the transfer once per position.
  NameSet Downloaded;
  for (size_t J = 0; J < F->FBody.Result.size(); ++J) {
    const SubExp &RS = F->FBody.Result[J];
    if (RS.isConst())
      continue;
    if (!Downloaded.insert(RS.getVar()).second)
      continue;
    if (HostValid.count(RS.getVar()))
      continue;
    const Value &V = (*Out)[J];
    if (!V.isArray())
      continue;
    int64_t Bytes = V.numElems() * elemBytes(V.elemKind());
    Cost.TransferredBytes += Bytes;
    Cost.ExcludedTransferCycles += Bytes / P.TransferBytesPerCycle;
  }

  Cost.HostCycles = Cost.HostOps * P.HostCyclesPerOp;
  double Serial = Cost.KernelCycles + Cost.HostCycles +
                  Cost.TransferCycles + Cost.RetryCycles;
  SyncMemStats();
  Cost.NumDevices = NumDev;
  if (NumDev > 1)
    Cost.PerDevicePeakBytes = DG.peakBytes();
  if (Async) {
    // Makespan <= serial sum holds by construction; the min() only guards
    // against float-summation noise between the two accumulations.  With
    // several devices the group makespan is the max over the per-device
    // makespans and the busy counters sum over the group.
    Cost.TotalCycles = std::min(DG.makespan(), Serial);
    Cost.CopyEngineBusy = DG.copyBusy();
    Cost.ComputeEngineBusy = DG.computeBusy();
    Cost.OverlapSavedCycles = std::max(0.0, Serial - Cost.TotalCycles);
  } else {
    Cost.TotalCycles = Serial;
  }

  RunResult RR;
  RR.Outputs = Out.take();
  RR.Cost = Cost;
  return RR;
}

} // namespace

ErrorOr<RunResult> Device::run(const Program &Prog, const std::string &Fun,
                               const std::vector<Value> &Args) {
  trace::ScopedSpan Span("device-run", "device");
  Span.arg("device", P.Name);
  Span.arg("function", Fun);
  // Reject inconsistent configurations before anything launches.  A
  // Config error is not a device failure: the interpreter fallback never
  // masks it (the configuration would be just as wrong on retry).
  if (auto Err = P.validate())
    return Err.getError();
  CostReport Cost;
  FaultPlan Plan(R.Faults);
  // Resolve the memory plan: the compiler's artifact when provided, a
  // locally computed one otherwise, none under --no-mem-plan.
  mem::MemoryPlan LocalPlan;
  const mem::FunPlan *FP = nullptr;
  if (P.UseMemPlan) {
    if (MemPlan) {
      FP = MemPlan->forFun(Fun);
    } else {
      LocalPlan = mem::planMemory(Prog);
      FP = LocalPlan.forFun(Fun);
    }
  }
  // Resolve the shard plan: only consulted with more than one device, and
  // only for functions the compiler actually planned.
  const shard::FunShardPlan *SP = nullptr;
  if (Shards && Devices > 1)
    SP = Shards->forFun(Fun);
  if (SP)
    Span.arg("devices", Devices);
  auto Res = runDeviceAttempt(P, R, Plan, Cost, Prog, Fun, Args, FP, SP,
                              SP ? Devices : 1);
  if (FP) {
    trace::counter("device.planned_peak_bytes", Cost.PlannedPeakBytes);
    trace::counter("device.hoisted_allocs", Cost.HoistedAllocs);
    trace::counter("device.reused_blocks", Cost.ReusedBlocks);
  }
  if (Res) {
    Span.arg("cycles", Res->Cost.TotalCycles);
    return Res;
  }

  // Only persistent *device* failures degrade to the interpreter; compile
  // errors and plain runtime errors (bad index, shape mismatch) would fail
  // identically there, so they surface directly.
  CompilerError DevErr = Res.getError();
  bool DeviceFailure = DevErr.Kind == ErrorKind::DeviceOOM ||
                       DevErr.Kind == ErrorKind::Watchdog ||
                       DevErr.Kind == ErrorKind::TransientFault;
  if (!DeviceFailure || !R.InterpFallback)
    return DevErr;
  trace::TraceSession::global().instant("interp-fallback", "device");

  // Graceful degradation: recompute the whole run on the reference
  // interpreter.  The aborted device work stays charged in the cost
  // report, and every interpreted step is charged as a host op.
  InterpOptions IO;
  IO.ConsumeOnUpdate = true;
  IO.OnExp = [&](const Exp &, const NameMap<Value> &) { ++Cost.HostOps; };
  Interpreter I(Prog, IO);
  auto Out = I.runFunction(Fun, Args);
  if (!Out)
    return CompilerError::fallbackExhausted(
        "device failed (" + DevErr.Message +
        ") and the interpreter fallback also failed: " +
        Out.getError().Message);

  Cost.HostCycles = Cost.HostOps * P.HostCyclesPerOp;
  Cost.TotalCycles = Cost.KernelCycles + Cost.HostCycles +
                     Cost.TransferCycles + Cost.RetryCycles;

  RunResult RR;
  RR.Outputs = Out.take();
  RR.Cost = Cost;
  RR.InterpFallback = true;
  RR.FallbackError = DevErr;
  return RR;
}
