//===- Timeline.h - Two-engine asynchronous device timeline -----*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command scheduler behind the device simulator's asynchronous cost
/// model.  A real OpenCL/CUDA runtime owns (at least) two independent
/// engines — a copy engine moving data over PCIe and a compute engine
/// executing kernels — fed by in-order command queues.  The host enqueues
/// work and only blocks when it needs a result.  TotalCycles is then not
/// the sum of the per-command charges but the dependency-respecting
/// makespan over both engines: an upload overlaps an unrelated kernel, a
/// readback of an early result overlaps a later in-flight kernel, and
/// back-to-back kernels hide part of each other's launch overhead in the
/// driver pipeline.
///
/// The model keeps three clocks:
///
///   * HostClock    — the simulated host; advances on host ops and on
///                    blocking downloads,
///   * CopyFree     — when the copy engine finishes its queued commands,
///   * ComputeFree  — when the compute engine finishes its queued kernels.
///
/// Commands carry explicit data dependencies as ready-times of the buffers
/// they read (the caller tracks per-buffer ready-times; see
/// BufferManager).  Both queues are in-order, so same-engine dependencies
/// need no bookkeeping at all.
///
/// Every scheduling rule advances max(clocks) by at most the command's
/// serial charge, which proves makespan() <= the serial sum of charges —
/// the invariant the --sync ablation and the regression tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_GPUSIM_TIMELINE_H
#define FUTHARKCC_GPUSIM_TIMELINE_H

#include <algorithm>

namespace fut {
namespace gpusim {

/// A scheduled command's position on its engine, in simulated cycles.
struct ScheduledCmd {
  double Start = 0;
  double End = 0;
  /// True when this command's [Start, End) interval overlapped the other
  /// engine's most recent command — the trace layer turns these into
  /// overlap instants.
  bool OverlappedOtherEngine = false;
};

class EngineTimeline {
  double HostClock = 0;
  double CopyFree = 0;
  double ComputeFree = 0;

  double CopyBusyCycles = 0;
  double ComputeBusyCycles = 0;

  // Most recent command interval per engine, for overlap detection.
  double LastCopyStart = 0, LastCopyEnd = 0;
  double LastComputeStart = 0, LastComputeEnd = 0;

  static bool overlaps(double S, double E, double OS, double OE) {
    return S < OE && OS < E;
  }

public:
  /// Serial host work: always blocks the host.
  void host(double Cycles) { HostClock += Cycles; }

  /// Non-blocking upload: enqueued on the copy engine at the current host
  /// time; the host continues immediately.  Returns the scheduled
  /// interval; the produced buffer is ready at .End.
  ScheduledCmd upload(double Cycles) {
    ScheduledCmd C;
    C.Start = std::max(CopyFree, HostClock);
    C.End = C.Start + Cycles;
    CopyFree = C.End;
    CopyBusyCycles += Cycles;
    C.OverlappedOtherEngine =
        overlaps(C.Start, C.End, LastComputeStart, LastComputeEnd);
    LastCopyStart = C.Start;
    LastCopyEnd = C.End;
    return C;
  }

  /// Non-blocking peer receive: an inter-device copy landing on this
  /// device's copy engine, dependent on the source block being ready at
  /// \p SrcReady on its producing device.  Like upload(), the host
  /// continues immediately; unlike upload(), the transfer cannot start
  /// before its cross-device dependency.
  ScheduledCmd recv(double Cycles, double SrcReady) {
    ScheduledCmd C;
    C.Start = std::max({CopyFree, HostClock, SrcReady});
    C.End = C.Start + Cycles;
    CopyFree = C.End;
    CopyBusyCycles += Cycles;
    C.OverlappedOtherEngine =
        overlaps(C.Start, C.End, LastComputeStart, LastComputeEnd);
    LastCopyStart = C.Start;
    LastCopyEnd = C.End;
    return C;
  }

  /// Blocking download: the host waits for the copy engine, the source
  /// buffer (ready at \p SrcReady) and the transfer itself.  While the
  /// host waits, the compute engine keeps draining its queue — that is
  /// where readback/kernel overlap comes from.
  ScheduledCmd download(double Cycles, double SrcReady) {
    ScheduledCmd C;
    C.Start = std::max({CopyFree, HostClock, SrcReady});
    C.End = C.Start + Cycles;
    CopyFree = C.End;
    HostClock = C.End;
    CopyBusyCycles += Cycles;
    C.OverlappedOtherEngine =
        overlaps(C.Start, C.End, LastComputeStart, LastComputeEnd);
    LastCopyStart = C.Start;
    LastCopyEnd = C.End;
    return C;
  }

  /// Kernel launch: enqueued at the current host time, executes for
  /// \p ExecCycles once the engine is free and its read-set is ready at
  /// \p DepsReady.  Of the \p LaunchCycles driver/launch overhead, up to
  /// \p PipelineFrac can be hidden behind the wait for the engine or the
  /// data: a kernel issued to an idle device pays the full launch cost,
  /// while back-to-back kernels pipeline all but (1 - PipelineFrac) of it.
  ScheduledCmd kernel(double DepsReady, double LaunchCycles,
                      double PipelineFrac, double ExecCycles) {
    PipelineFrac = std::min(1.0, std::max(0.0, PipelineFrac));
    double Avail = std::max(ComputeFree, DepsReady);
    double Residual = (1.0 - PipelineFrac) * LaunchCycles;
    ScheduledCmd C;
    C.Start = std::max(Avail + Residual, HostClock + LaunchCycles);
    C.End = C.Start + ExecCycles;
    // The engine is occupied for the launch residue it actually
    // serialised (between Residual and the full LaunchCycles) plus the
    // execution itself.
    ComputeBusyCycles += std::min(LaunchCycles, C.Start - Avail) + ExecCycles;
    ComputeFree = C.End;
    C.OverlappedOtherEngine =
        overlaps(C.Start, C.End, LastCopyStart, LastCopyEnd);
    LastComputeStart = C.Start;
    LastComputeEnd = C.End;
    return C;
  }

  /// Retry backoff serialises the whole device: both engines drain, the
  /// host spins for \p Cycles, and nothing started before the barrier can
  /// overlap anything after it.
  void barrier(double Cycles) {
    double T = makespan() + Cycles;
    HostClock = CopyFree = ComputeFree = T;
  }

  /// The dependency-respecting completion time over host and both
  /// engines; this is TotalCycles in asynchronous mode.
  double makespan() const {
    return std::max({HostClock, CopyFree, ComputeFree});
  }

  double copyBusy() const { return CopyBusyCycles; }
  double computeBusy() const { return ComputeBusyCycles; }

  /// The simulated host's current time on this timeline.  In a
  /// DeviceGroup the logical host is shared: before issuing to another
  /// device its clock is synced forward so no device can launch work the
  /// host has not reached yet.
  double hostClock() const { return HostClock; }

  /// Advances the host clock to at least \p T (never backwards).
  void syncHost(double T) { HostClock = std::max(HostClock, T); }

  /// When the compute engine drains its queue — the conservative
  /// dependency for reading back a buffer the scheduler cannot attribute
  /// to a producing command (an alias of some kernel result).
  double computeFreeTime() const { return ComputeFree; }
};

} // namespace gpusim
} // namespace fut

#endif // FUTHARKCC_GPUSIM_TIMELINE_H
