//===- Faults.cpp - Deterministic fault injection for the simulator ---------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Faults.h"

using namespace fut::gpusim;

namespace {

/// splitmix64 finaliser over (seed, index): a stateless counter-based
/// generator, so draw N never depends on how draws 0..N-1 were used.
uint64_t mix(uint64_t Seed, uint64_t Index) {
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ULL * (Index + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace

double FaultPlan::nextUnit() {
  return (mix(C.Seed, Draws++) >> 11) * 0x1.0p-53;
}

bool FaultPlan::nextLaunchFails() {
  if (C.LaunchFailRate <= 0)
    return false;
  return nextUnit() < C.LaunchFailRate;
}

bool FaultPlan::nextResultCorrupted() {
  if (C.CorruptRate <= 0)
    return false;
  return nextUnit() < C.CorruptRate;
}
