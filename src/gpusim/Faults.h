//===- Faults.h - Deterministic fault injection for the simulator -*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic model of transient device faults, so the host
/// runtime's failure paths are testable without real hardware.  A FaultPlan
/// draws one pseudo-random number per decision from a counter-indexed
/// splitmix64 stream: the same seed and the same program always produce the
/// same sequence of injected faults, retries, and counters.
///
/// Two transient fault classes are modelled:
///
///  * kernel-launch failures: the launch never starts (no kernel cycles are
///    charged), as with a transiently failing driver/queue submission;
///
///  * detected result corruption: the kernel runs to completion (its cycles
///    are charged) but the device reports the result as corrupt — the
///    ECC-style detected-error model, so retried runs still produce
///    bit-identical outputs.
///
/// ResilienceParams configures how the host runtime reacts: bounded retries
/// with exponential simulated-cycle backoff, and an optional graceful
/// degradation to the reference interpreter when the device fails
/// persistently.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_GPUSIM_FAULTS_H
#define FUTHARKCC_GPUSIM_FAULTS_H

#include <cstdint>

namespace fut {
namespace gpusim {

/// Injection rates and the seed of the deterministic fault stream.
struct FaultConfig {
  /// Probability in [0,1] that a kernel launch transiently fails.
  double LaunchFailRate = 0.0;
  /// Probability in [0,1] that a completed kernel's result is reported as
  /// corrupted (detected, ECC-style) and must be recomputed.
  double CorruptRate = 0.0;
  /// Seed of the fault stream; the same seed reproduces the same faults.
  uint64_t Seed = 0;

  bool enabled() const { return LaunchFailRate > 0 || CorruptRate > 0; }
};

/// How the host runtime reacts to device failures.
struct ResilienceParams {
  /// Transient failures of one kernel are retried at most this many times
  /// before the launch is declared persistently failed.
  int MaxRetries = 3;
  /// Simulated-cycle cost of the first retry's backoff; each further retry
  /// of the same kernel doubles it (exponential backoff).
  double RetryBackoffCycles = 2000;
  /// When the device fails persistently (OOM, watchdog kill, or retries
  /// exhausted), rerun the program on the reference interpreter instead of
  /// failing, and flag the fallback in RunResult.
  bool InterpFallback = true;

  FaultConfig Faults;
};

/// The deterministic per-run fault stream.  Every decision consumes one
/// draw; draws are indexed by a counter, so the sequence is a pure function
/// of (seed, decision index).
class FaultPlan {
  FaultConfig C;
  uint64_t Draws = 0;

public:
  explicit FaultPlan(FaultConfig C = {}) : C(C) {}

  const FaultConfig &config() const { return C; }
  bool enabled() const { return C.enabled(); }

  /// Number of decisions drawn so far (for tests asserting determinism).
  uint64_t draws() const { return Draws; }

  /// Restarts the stream from the seed.
  void reset() { Draws = 0; }

  /// Decides whether the next kernel launch transiently fails.
  bool nextLaunchFails();

  /// Decides whether the result of a completed kernel is reported corrupt.
  bool nextResultCorrupted();

private:
  double nextUnit();
};

} // namespace gpusim
} // namespace fut

#endif // FUTHARKCC_GPUSIM_FAULTS_H
