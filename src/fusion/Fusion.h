//===- Fusion.h - The fusion engine (Section 4) -----------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Producer-consumer and horizontal fusion, realised greedily at all
/// nesting levels during a traversal of each body's dependency graph —
/// the T2 graph-reduction discipline of Section 4: a SOAC fuses into its
/// consumer when it is the source of exactly one dependency edge and the
/// consumer is compatible.  Implemented rules:
///
///   * map ∘ map vertical fusion (the map-map rule of Section 2.1),
///   * map ∘ reduce fusion into stream_red (the paper's redomap / F1∘F3∘F6
///     composition),
///   * stream_map/stream_red ∘ reduce fusion (F6, as in Fig 10a → 10b),
///   * map ∘ reduce_by_index fusion: a map feeding only the histogram's
///     value arrays is composed into its value function,
///   * horizontal fusion of independent maps of equal width.
///
/// A SOAC is never moved past a consumption point of one of its inputs
/// (Section 4.2's in-place-update restriction), and explicit indexing of a
/// producer's output blocks fusion, exactly as the paper prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_FUSION_FUSION_H
#define FUTHARKCC_FUSION_FUSION_H

#include "ir/IR.h"

namespace fut {

struct FusionStats {
  int Vertical = 0;
  int Redomap = 0;
  int StreamFusions = 0;
  int Horizontal = 0;
  int HistFusions = 0; ///< Maps composed into reduce_by_index value fns.

  int total() const {
    return Vertical + Redomap + StreamFusions + Horizontal + HistFusions;
  }
};

/// Fuses SOACs in every function of the program, at all nesting levels.
FusionStats fuseProgram(Program &P, NameSource &Names);

/// Fuses within one body (recursively).
FusionStats fuseBody(Body &B, NameSource &Names);

} // namespace fut

#endif // FUTHARKCC_FUSION_FUSION_H
