//===- StreamRules.cpp - The F1..F5 stream conversion rules -----------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "fusion/StreamRules.h"

#include "ir/Builder.h"
#include "ir/Traversal.h"

using namespace fut;

namespace {

/// Fresh chunk parameters mirroring the row types of the lambda \p RowTys,
/// with outer dimension \p ChunkVar.
std::vector<Param> chunkParams(const std::vector<Type> &RowTys,
                               const VName &ChunkVar, NameSource &NS) {
  std::vector<Param> Out;
  for (const Type &T : RowTys)
    Out.emplace_back(NS.fresh("chunk"), T.arrayOf(SubExp::var(ChunkVar)));
  return Out;
}

std::vector<VName> paramNames(const std::vector<Param> &Ps) {
  std::vector<VName> Out;
  for (const Param &P : Ps)
    Out.push_back(P.Name);
  return Out;
}

std::vector<Type> rowTypesOf(const Lambda &Fn, size_t Begin, size_t Count) {
  std::vector<Type> Out;
  for (size_t I = 0; I < Count; ++I)
    Out.push_back(Fn.Params[Begin + I].Ty);
  return Out;
}

} // namespace

ExpPtr fut::ruleF1MapToStreamMap(const MapExp &M, NameSource &NS) {
  VName C = NS.fresh("chunksz");
  std::vector<Type> RowTys = rowTypesOf(M.Fn, 0, M.Fn.Params.size());
  std::vector<Param> Chunks = chunkParams(RowTys, C, NS);

  BodyBuilder BB(NS);
  std::vector<Type> MappedTys;
  for (const Type &T : M.Fn.RetTypes)
    MappedTys.push_back(T.arrayOf(SubExp::var(C)));
  auto Mapped = BB.bindMulti(
      "mapped", MappedTys,
      std::make_unique<MapExp>(SubExp::var(C), renameLambda(M.Fn, NS),
                               paramNames(Chunks)));
  std::vector<SubExp> Res;
  for (const VName &N : Mapped)
    Res.push_back(SubExp::var(N));

  std::vector<Param> Params;
  Params.emplace_back(C, Type::scalar(ScalarKind::I32));
  Params.insert(Params.end(), Chunks.begin(), Chunks.end());
  Lambda Fold(std::move(Params), BB.finish(std::move(Res)), MappedTys);
  return std::make_unique<StreamExp>(StreamExp::FormKind::Par, M.Width,
                                     Lambda(), 0, std::vector<SubExp>{},
                                     std::move(Fold), M.Arrays);
}

ExpPtr fut::ruleF2MapToStreamSeq(const MapExp &M, NameSource &NS) {
  VName C = NS.fresh("chunksz");
  std::vector<Type> RowTys = rowTypesOf(M.Fn, 0, M.Fn.Params.size());
  std::vector<Param> Chunks = chunkParams(RowTys, C, NS);
  // A dummy scalar accumulator (the paper's 0).
  VName Acc = NS.fresh("dummy");

  BodyBuilder BB(NS);
  std::vector<Type> MappedTys;
  for (const Type &T : M.Fn.RetTypes)
    MappedTys.push_back(T.arrayOf(SubExp::var(C)));
  auto Mapped = BB.bindMulti(
      "mapped", MappedTys,
      std::make_unique<MapExp>(SubExp::var(C), renameLambda(M.Fn, NS),
                               paramNames(Chunks)));
  std::vector<SubExp> Res{SubExp::var(Acc)};
  for (const VName &N : Mapped)
    Res.push_back(SubExp::var(N));

  std::vector<Param> Params;
  Params.emplace_back(C, Type::scalar(ScalarKind::I32));
  Params.emplace_back(Acc, Type::scalar(ScalarKind::I32));
  Params.insert(Params.end(), Chunks.begin(), Chunks.end());
  std::vector<Type> RetTys{Type::scalar(ScalarKind::I32)};
  RetTys.insert(RetTys.end(), MappedTys.begin(), MappedTys.end());
  Lambda Fold(std::move(Params), BB.finish(std::move(Res)),
              std::move(RetTys));
  return std::make_unique<StreamExp>(
      StreamExp::FormKind::Seq, M.Width, Lambda(), 1,
      std::vector<SubExp>{SubExp::constant(PrimValue::makeI32(0))},
      std::move(Fold), M.Arrays);
}

namespace {

/// Shared builder for F3/F4: the fold computes
///   accs' = op(accs, reduce op e chunk).
Lambda reduceFold(const ReduceExp &R, NameSource &NS) {
  VName C = NS.fresh("chunksz");
  size_t K = R.Neutral.size();
  std::vector<Type> AccTys = rowTypesOf(R.Fn, 0, K);
  std::vector<Type> RowTys = rowTypesOf(R.Fn, K, K);

  std::vector<Param> Accs;
  for (const Type &T : AccTys)
    Accs.emplace_back(NS.fresh("acc"), T);
  std::vector<Param> Chunks = chunkParams(RowTys, C, NS);

  BodyBuilder BB(NS);
  // Per-chunk reduction, starting from the running accumulator: for an
  // associative op, acc ⊕ (e ⊕ b1 ⊕ ... ) == reduce op acc chunk when e is
  // neutral; we seed directly with the accumulator.
  std::vector<SubExp> AccSE;
  for (const Param &P : Accs)
    AccSE.push_back(SubExp::var(P.Name));
  auto Res = BB.bindMulti("part", AccTys,
                          std::make_unique<ReduceExp>(
                              SubExp::var(C), renameLambda(R.Fn, NS),
                              AccSE, paramNames(Chunks), R.Commutative));
  std::vector<SubExp> ResSE;
  for (const VName &N : Res)
    ResSE.push_back(SubExp::var(N));

  std::vector<Param> Params;
  Params.emplace_back(C, Type::scalar(ScalarKind::I32));
  Params.insert(Params.end(), Accs.begin(), Accs.end());
  Params.insert(Params.end(), Chunks.begin(), Chunks.end());
  return Lambda(std::move(Params), BB.finish(std::move(ResSE)), AccTys);
}

} // namespace

ExpPtr fut::ruleF3ReduceToStreamRed(const ReduceExp &R, NameSource &NS) {
  return std::make_unique<StreamExp>(
      StreamExp::FormKind::Red, R.Width, renameLambda(R.Fn, NS),
      static_cast<int>(R.Neutral.size()), R.Neutral, reduceFold(R, NS),
      R.Arrays);
}

ExpPtr fut::ruleF4ReduceToStreamSeq(const ReduceExp &R, NameSource &NS) {
  return std::make_unique<StreamExp>(
      StreamExp::FormKind::Seq, R.Width, Lambda(),
      static_cast<int>(R.Neutral.size()), R.Neutral, reduceFold(R, NS),
      R.Arrays);
}

ExpPtr fut::ruleF5ScanToStreamSeq(const ScanExp &S, NameSource &NS) {
  VName C = NS.fresh("chunksz");
  size_t K = S.Neutral.size();
  std::vector<Type> AccTys = rowTypesOf(S.Fn, 0, K);
  std::vector<Type> RowTys = rowTypesOf(S.Fn, K, K);

  std::vector<Param> Accs;
  for (const Type &T : AccTys)
    Accs.emplace_back(NS.fresh("acc"), T);
  std::vector<Param> Chunks = chunkParams(RowTys, C, NS);

  BodyBuilder BB(NS);
  // xc = scan op e chunk.
  std::vector<Type> ScanTys;
  for (const Type &T : RowTys)
    ScanTys.push_back(T.arrayOf(SubExp::var(C)));
  auto Xc = BB.bindMulti("xc", ScanTys,
                         std::make_unique<ScanExp>(SubExp::var(C),
                                                   renameLambda(S.Fn, NS),
                                                   S.Neutral,
                                                   paramNames(Chunks)));

  // yc = map (accs op) xc: the lambda binds the op's first K params to the
  // running accumulators.
  Lambda Partial = renameLambda(S.Fn, NS);
  NameMap<SubExp> Bind;
  for (size_t I = 0; I < K; ++I)
    Bind[Partial.Params[I].Name] = SubExp::var(Accs[I].Name);
  substituteInBody(Bind, Partial.B);
  Partial.Params.erase(Partial.Params.begin(), Partial.Params.begin() + K);
  auto Yc = BB.bindMulti("yc", ScanTys,
                         std::make_unique<MapExp>(SubExp::var(C),
                                                  std::move(Partial), Xc));

  // last yc (guarding the empty chunk).
  VName Cm1 = NS.fresh("cm1");
  BB.append({Param(Cm1, Type::scalar(ScalarKind::I32))},
            std::make_unique<BinOpExp>(
                BinOp::Sub, SubExp::var(C),
                SubExp::constant(PrimValue::makeI32(1))));
  VName NonEmpty = NS.fresh("nonempty");
  BB.append({Param(NonEmpty, Type::scalar(ScalarKind::Bool))},
            std::make_unique<BinOpExp>(
                BinOp::Gt, SubExp::var(C),
                SubExp::constant(PrimValue::makeI32(0))));
  std::vector<SubExp> Res;
  for (size_t I = 0; I < K; ++I) {
    BodyBuilder ThenBB(NS);
    SubExp LastI = ThenBB.index(Yc[I], {SubExp::var(Cm1)}, AccTys[I]);
    Body Then = ThenBB.finish({LastI});
    BodyBuilder ElseBB(NS);
    Body Else = ElseBB.finish({SubExp::var(Accs[I].Name)});
    VName Last = BB.bind("last", AccTys[I],
                         std::make_unique<IfExp>(SubExp::var(NonEmpty),
                                                 std::move(Then),
                                                 std::move(Else),
                                                 std::vector<Type>{
                                                     AccTys[I]}));
    Res.push_back(SubExp::var(Last));
  }
  for (const VName &N : Yc)
    Res.push_back(SubExp::var(N));

  std::vector<Param> Params;
  Params.emplace_back(C, Type::scalar(ScalarKind::I32));
  Params.insert(Params.end(), Accs.begin(), Accs.end());
  Params.insert(Params.end(), Chunks.begin(), Chunks.end());
  std::vector<Type> RetTys = AccTys;
  RetTys.insert(RetTys.end(), ScanTys.begin(), ScanTys.end());
  Lambda Fold(std::move(Params), BB.finish(std::move(Res)),
              std::move(RetTys));
  return std::make_unique<StreamExp>(StreamExp::FormKind::Seq, S.Width,
                                     Lambda(),
                                     static_cast<int>(S.Neutral.size()),
                                     S.Neutral, std::move(Fold), S.Arrays);
}
