//===- StreamRules.h - The F1..F5 stream conversion rules -------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rewrite rules of Fig 9 that convert the basic SOACs into streaming
/// form:
///   F1: map f b          => stream_map (\bc -> map f bc) b
///   F2: map f b          => stream_seq (\a bc -> (0, map f bc)) 0 b
///   F3: reduce op e b    => stream_red op (\a bc -> a op reduce op e bc) e b
///   F4: reduce op e b    => stream_seq (\a bc -> a op reduce op e bc) e b
///   F5: scan op e b      => stream_seq (\a bc -> let xc = scan op e bc
///                                                let yc = map (a op) xc
///                                                in (last yc, yc)) e b
/// Each returns a StreamExp equivalent to the input SOAC; chunking
/// invariance is guaranteed by associativity of the operator (a programmer
/// obligation, as in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_FUSION_STREAMRULES_H
#define FUTHARKCC_FUSION_STREAMRULES_H

#include "ir/IR.h"

namespace fut {

ExpPtr ruleF1MapToStreamMap(const MapExp &M, NameSource &Names);
ExpPtr ruleF2MapToStreamSeq(const MapExp &M, NameSource &Names);
ExpPtr ruleF3ReduceToStreamRed(const ReduceExp &R, NameSource &Names);
ExpPtr ruleF4ReduceToStreamSeq(const ReduceExp &R, NameSource &Names);
ExpPtr ruleF5ScanToStreamSeq(const ScanExp &S, NameSource &Names);

} // namespace fut

#endif // FUTHARKCC_FUSION_STREAMRULES_H
