//===- Fusion.cpp - The fusion engine (Section 4) ----------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "fusion/Fusion.h"

#include "trace/Trace.h"

#include "ir/Builder.h"
#include "ir/Traversal.h"

#include <map>

using namespace fut;

namespace {

class BodyFuser {
  NameSource &NS;
  FusionStats &Stats;

public:
  BodyFuser(NameSource &NS, FusionStats &Stats) : NS(NS), Stats(Stats) {}

  void run(Body &B) {
    // Bottom-up: fuse inside nested bodies first (fusion "at all nesting
    // levels").
    for (Stm &S : B.Stms)
      forEachChildBody(*S.E, [&](Body &Inner) { run(Inner); });
    while (tryFuseOnce(B))
      ;
  }

private:
  //===--------------------------------------------------------------------===//
  // Dependency-graph queries
  //===--------------------------------------------------------------------===//

  /// Where each name is defined: statement index and output position.
  struct DefSite {
    int StmIdx;
    int OutPos;
  };

  NameMap<DefSite> defSites(const Body &B) const {
    NameMap<DefSite> Out;
    for (int I = 0; I < static_cast<int>(B.Stms.size()); ++I)
      for (int J = 0; J < static_cast<int>(B.Stms[I].Pat.size()); ++J)
        Out[B.Stms[I].Pat[J].Name] = {I, J};
    return Out;
  }

  /// All statement indices (other than \p Self) whose expression mentions
  /// \p V, plus whether the body result mentions it.
  void findUsers(const Body &B, const VName &V, int Self,
                 std::vector<int> &Users, bool &UsedInResult) const {
    Users.clear();
    UsedInResult = false;
    for (int I = 0; I < static_cast<int>(B.Stms.size()); ++I) {
      if (I == Self)
        continue;
      NameSet Free = freeVarsInExp(*B.Stms[I].E);
      if (Free.count(V))
        Users.push_back(I);
      for (const Param &P : B.Stms[I].Pat)
        for (const Dim &D : P.Ty.shape())
          if (D.isVar() && D.getVar() == V && Users.empty())
            Users.push_back(I);
    }
    for (const SubExp &R : B.Result)
      if (R.isVar() && R.getVar() == V)
        UsedInResult = true;
  }

  /// True if every output of statement \p P is used only by statement \p T,
  /// and only as a direct SOAC array input there.
  bool outputsFeedOnly(const Body &B, int P, int T,
                       const std::vector<VName> &ConsumerArrays) const {
    for (const Param &Out : B.Stms[P].Pat) {
      std::vector<int> Users;
      bool InResult;
      findUsers(B, Out.Name, P, Users, InResult);
      if (InResult)
        return false;
      for (int U : Users)
        if (U != T)
          return false;
      if (Users.empty())
        continue; // Dead output: fine, it is simply dropped.
      // Within T, the name must occur only as an array input — not free in
      // the lambda, the width, or the neutral elements.  We check that its
      // only occurrences are in ConsumerArrays by subtracting them.
      NameSet Free = freeVarsInExp(*B.Stms[T].E);
      if (!Free.count(Out.Name))
        return false;
      bool IsInput = false;
      for (const VName &A : ConsumerArrays)
        IsInput = IsInput || A == Out.Name;
      if (!IsInput)
        return false;
      // Free occurrences beyond the array list (e.g. explicit indexing
      // inside the lambda) block fusion, per Section 4.2.
      NameSet LambdaFree = lambdaFreeVars(*B.Stms[T].E);
      if (LambdaFree.count(Out.Name))
        return false;
    }
    return true;
  }

  static NameSet lambdaFreeVars(const Exp &E) {
    NameSet Out;
    switch (E.kind()) {
    case ExpKind::Map:
      return freeVarsInLambda(expCast<MapExp>(&E)->Fn);
    case ExpKind::Reduce:
      return freeVarsInLambda(expCast<ReduceExp>(&E)->Fn);
    case ExpKind::Scan:
      return freeVarsInLambda(expCast<ScanExp>(&E)->Fn);
    case ExpKind::Stream: {
      const auto *S = expCast<StreamExp>(&E);
      NameSet A = freeVarsInLambda(S->FoldFn);
      if (S->Form == StreamExp::FormKind::Red) {
        NameSet B = freeVarsInLambda(S->ReduceFn);
        A.insert(B.begin(), B.end());
      }
      return A;
    }
    case ExpKind::ReduceByIndex: {
      const auto *R = expCast<ReduceByIndexExp>(&E);
      NameSet A = freeVarsInLambda(R->CombineFn);
      NameSet B = freeVarsInLambda(R->ValueFn);
      A.insert(B.begin(), B.end());
      return A;
    }
    default:
      return Out;
    }
  }

  /// True if some statement in (P, T) consumes a variable the producer
  /// reads — fusing would move the producer past the consumption point.
  bool consumptionBetween(const Body &B, int P, int T) const {
    NameSet ProducerReads = freeVarsInExp(*B.Stms[P].E);
    for (int I = P + 1; I < T; ++I) {
      const Exp &E = *B.Stms[I].E;
      if (const auto *U = expDynCast<UpdateExp>(&E))
        if (ProducerReads.count(U->Arr))
          return true;
      if (E.kind() == ExpKind::Apply)
        return true; // Conservative: calls may consume unique arguments.
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // The fusion step
  //===--------------------------------------------------------------------===//

  bool tryFuseOnce(Body &B) {
    NameMap<DefSite> Defs = defSites(B);

    for (int T = 0; T < static_cast<int>(B.Stms.size()); ++T) {
      Exp &TE = *B.Stms[T].E;

      if (auto *TM = expDynCast<MapExp>(&TE)) {
        for (const VName &In : TM->Arrays) {
          auto It = Defs.find(In);
          if (It == Defs.end() || It->second.StmIdx >= T)
            continue;
          int P = It->second.StmIdx;
          auto *PM = expDynCast<MapExp>(B.Stms[P].E.get());
          if (!PM || !(PM->Width == TM->Width))
            continue;
          if (!outputsFeedOnly(B, P, T, TM->Arrays) ||
              consumptionBetween(B, P, T))
            continue;
          fuseMapMap(B, P, T);
          ++Stats.Vertical;
          return true;
        }
      }

      if (auto *TH = expDynCast<ReduceByIndexExp>(&TE)) {
        // map ∘ reduce_by_index: a map feeding only the histogram's value
        // arrays composes into the value function.  The index array and
        // the (consumed) destination must not come from the producer, nor
        // may the producer read the destination — the fused histogram
        // would otherwise read storage it consumes.  Widths need no
        // explicit check: the type rules force the value arrays' outer
        // dimension to equal the index array's, so a well-typed producer
        // map already has the right width.
        int P = producerOfAll(Defs, TH->ValueArrs, T);
        if (P >= 0 && !consumptionBetween(B, P, T)) {
          auto *PM = expDynCast<MapExp>(B.Stms[P].E.get());
          bool ProducesMeta = false;
          if (PM)
            for (const Param &Out : B.Stms[P].Pat)
              if (Out.Name == TH->IndexArr || Out.Name == TH->Dest)
                ProducesMeta = true;
          bool ReadsDest = false;
          if (PM)
            for (const VName &A : PM->Arrays)
              if (A == TH->Dest)
                ReadsDest = true;
          if (PM && !ProducesMeta && !ReadsDest &&
              outputsFeedOnly(B, P, T, TH->ValueArrs)) {
            fuseMapHist(B, P, T);
            ++Stats.HistFusions;
            return true;
          }
        }
      }

      if (auto *TR = expDynCast<ReduceExp>(&TE)) {
        // All inputs from one producer?
        int P = producerOfAll(Defs, TR->Arrays, T);
        if (P >= 0 && !consumptionBetween(B, P, T)) {
          if (auto *PM = expDynCast<MapExp>(B.Stms[P].E.get())) {
            // A reduce with a vectorised (array-valued) operator is not a
            // fusion target: rule G5 turns it into a segmented reduction
            // over the transposed, materialised input instead (this is
            // why Fig 4b does O(n*k) memory traffic without in-place
            // updates).
            bool Vectorised = !TR->Fn.RetTypes.empty() &&
                              TR->Fn.RetTypes[0].isArray();
            if (!Vectorised && PM->Width == TR->Width &&
                outputsFeedOnly(B, P, T, TR->Arrays)) {
              fuseMapReduce(B, P, T);
              ++Stats.Redomap;
              return true;
            }
          }
          if (auto *PS = expDynCast<StreamExp>(B.Stms[P].E.get())) {
            if ((PS->Form == StreamExp::FormKind::Par ||
                 PS->Form == StreamExp::FormKind::Red) &&
                PS->Width == TR->Width &&
                mappedOutputsFeedOnly(B, P, *PS, T, TR->Arrays)) {
              fuseStreamReduce(B, P, T);
              ++Stats.StreamFusions;
              return true;
            }
          }
        }
      }
    }

    // Horizontal fusion: merge independent maps of equal width that share
    // an input.
    for (int T = 1; T < static_cast<int>(B.Stms.size()); ++T) {
      auto *TM = expDynCast<MapExp>(B.Stms[T].E.get());
      if (!TM)
        continue;
      for (int S = T - 1; S >= 0; --S) {
        auto *SM = expDynCast<MapExp>(B.Stms[S].E.get());
        if (!SM || !(SM->Width == TM->Width))
          continue;
        if (!sharesInput(*SM, *TM))
          continue;
        if (!independentForHorizontal(B, S, T))
          continue;
        fuseHorizontal(B, S, T);
        ++Stats.Horizontal;
        return true;
      }
    }
    return false;
  }

  int producerOfAll(const NameMap<DefSite> &Defs,
                    const std::vector<VName> &Arrays, int T) const {
    int P = -1;
    for (const VName &A : Arrays) {
      auto It = Defs.find(A);
      if (It == Defs.end() || It->second.StmIdx >= T)
        return -1;
      if (P < 0)
        P = It->second.StmIdx;
      else if (P != It->second.StmIdx)
        return -1;
    }
    return P;
  }

  static bool sharesInput(const MapExp &A, const MapExp &B) {
    for (const VName &X : A.Arrays)
      for (const VName &Y : B.Arrays)
        if (X == Y)
          return true;
    return false;
  }

  bool independentForHorizontal(const Body &B, int S, int T) const {
    // T must not (transitively through statements in (S,T)) use S's
    // outputs, no statement in (S, T] may use S's outputs, and no
    // consumption may occur in between.
    NameSet SOuts;
    for (const Param &P : B.Stms[S].Pat)
      SOuts.insert(P.Name);
    for (int I = S + 1; I <= T; ++I) {
      NameSet Free = freeVarsInExp(*B.Stms[I].E);
      for (const VName &V : SOuts)
        if (Free.count(V))
          return false;
    }
    return !consumptionBetween(B, S, T + 1);
  }

  //===--------------------------------------------------------------------===//
  // Rewrites
  //===--------------------------------------------------------------------===//

  /// map g (map f x) == map (g ∘ f) x.
  void fuseMapMap(Body &B, int P, int T) {
    auto *PM = expCast<MapExp>(B.Stms[P].E.get());
    auto *TM = expCast<MapExp>(B.Stms[T].E.get());

    Lambda Pl = renameLambda(PM->Fn, NS);
    Lambda Tl = renameLambda(TM->Fn, NS);

    std::vector<VName> NewInputs = PM->Arrays;
    std::vector<Param> NewParams = Pl.Params;
    NameMap<SubExp> Bind; // consumer params -> producer results / params

    for (size_t I = 0; I < TM->Arrays.size(); ++I) {
      const VName &In = TM->Arrays[I];
      int OutPos = -1;
      for (size_t J = 0; J < B.Stms[P].Pat.size(); ++J)
        if (B.Stms[P].Pat[J].Name == In)
          OutPos = static_cast<int>(J);
      if (OutPos >= 0) {
        Bind[Tl.Params[I].Name] = Pl.B.Result[OutPos];
        continue;
      }
      // Shared or new input.
      int Existing = -1;
      for (size_t J = 0; J < NewInputs.size(); ++J)
        if (NewInputs[J] == In)
          Existing = static_cast<int>(J);
      if (Existing >= 0) {
        Bind[Tl.Params[I].Name] = SubExp::var(NewParams[Existing].Name);
      } else {
        NewInputs.push_back(In);
        NewParams.push_back(Tl.Params[I]);
      }
    }
    substituteInBody(Bind, Tl.B);

    Body NewBody = std::move(Pl.B);
    for (Stm &S : Tl.B.Stms)
      NewBody.Stms.push_back(std::move(S));
    NewBody.Result = std::move(Tl.B.Result);

    Lambda Fused(std::move(NewParams), std::move(NewBody),
                 std::move(Tl.RetTypes));
    B.Stms[T].E = std::make_unique<MapExp>(TM->Width, std::move(Fused),
                                           std::move(NewInputs));
    B.Stms.erase(B.Stms.begin() + P);
  }

  /// reduce op e (map f x) == stream_red op (redomap fold) e x — the
  /// paper's redomap construct expressed with streaming SOACs.
  void fuseMapReduce(Body &B, int P, int T) {
    auto *PM = expCast<MapExp>(B.Stms[P].E.get());
    auto *TR = expCast<ReduceExp>(B.Stms[T].E.get());

    size_t K = TR->Neutral.size();
    std::vector<Type> AccTys;
    for (size_t I = 0; I < K; ++I)
      AccTys.push_back(TR->Fn.Params[I].Ty);

    Lambda Pl = renameLambda(PM->Fn, NS);
    VName C = NS.fresh("chunksz");
    std::vector<Param> Params;
    Params.emplace_back(C, Type::scalar(ScalarKind::I32));
    std::vector<Param> Accs;
    for (const Type &Ty : AccTys) {
      Accs.emplace_back(NS.fresh("acc"), Ty);
      Params.push_back(Accs.back());
    }
    std::vector<VName> ChunkNames;
    for (const Param &PP : Pl.Params) {
      Params.emplace_back(NS.fresh("chunk"),
                          PP.Ty.arrayOf(SubExp::var(C)));
      ChunkNames.push_back(Params.back().Name);
    }

    BodyBuilder BB(NS);
    std::vector<Type> MappedTys;
    for (const Type &Ty : Pl.RetTypes)
      MappedTys.push_back(Ty.arrayOf(SubExp::var(C)));
    auto Mapped =
        BB.bindMulti("mapped", MappedTys,
                     std::make_unique<MapExp>(SubExp::var(C), std::move(Pl),
                                              std::move(ChunkNames)));

    // Align the mapped results with the reduce's input order.
    std::vector<VName> RedInputs;
    for (const VName &A : TR->Arrays) {
      int OutPos = -1;
      for (size_t J = 0; J < B.Stms[P].Pat.size(); ++J)
        if (B.Stms[P].Pat[J].Name == A)
          OutPos = static_cast<int>(J);
      assert(OutPos >= 0 && "reduce input is not a producer output");
      RedInputs.push_back(Mapped[OutPos]);
    }

    std::vector<SubExp> AccSE;
    for (const Param &A : Accs)
      AccSE.push_back(SubExp::var(A.Name));
    auto Part = BB.bindMulti(
        "part", AccTys,
        std::make_unique<ReduceExp>(SubExp::var(C),
                                    renameLambda(TR->Fn, NS), AccSE,
                                    std::move(RedInputs),
                                    TR->Commutative));
    std::vector<SubExp> Res;
    for (const VName &N : Part)
      Res.push_back(SubExp::var(N));

    Lambda Fold(std::move(Params), BB.finish(std::move(Res)), AccTys);
    B.Stms[T].E = std::make_unique<StreamExp>(
        StreamExp::FormKind::Red, TR->Width, renameLambda(TR->Fn, NS),
        static_cast<int>(K), TR->Neutral, std::move(Fold), PM->Arrays);
    B.Stms.erase(B.Stms.begin() + P);
  }

  /// reduce_by_index dest op ne is (map f x) ==
  /// reduce_by_index dest op ne is x, with f composed into the value
  /// function — the histogram analogue of map-map fusion.
  void fuseMapHist(Body &B, int P, int T) {
    auto *PM = expCast<MapExp>(B.Stms[P].E.get());
    auto *TH = expCast<ReduceByIndexExp>(B.Stms[T].E.get());

    Lambda Pl = renameLambda(PM->Fn, NS);
    Lambda Vl = renameLambda(TH->ValueFn, NS);

    NameMap<SubExp> Bind; // value-fn params -> producer results
    for (size_t I = 0; I < TH->ValueArrs.size(); ++I) {
      int OutPos = -1;
      for (size_t J = 0; J < B.Stms[P].Pat.size(); ++J)
        if (B.Stms[P].Pat[J].Name == TH->ValueArrs[I])
          OutPos = static_cast<int>(J);
      assert(OutPos >= 0 && "histogram value array is not a map output");
      Bind[Vl.Params[I].Name] = Pl.B.Result[OutPos];
    }
    substituteInBody(Bind, Vl.B);

    Body NewBody = std::move(Pl.B);
    for (Stm &S : Vl.B.Stms)
      NewBody.Stms.push_back(std::move(S));
    NewBody.Result = std::move(Vl.B.Result);

    TH->ValueFn = Lambda(std::move(Pl.Params), std::move(NewBody),
                         std::move(Vl.RetTypes));
    TH->ValueArrs = PM->Arrays;
    B.Stms.erase(B.Stms.begin() + P);
  }

  /// True if all of \p Arrays are mapped (non-accumulator) outputs of the
  /// stream at statement \p P, each used only by statement \p T.
  bool mappedOutputsFeedOnly(const Body &B, int P, const StreamExp &PS,
                             int T, const std::vector<VName> &Arrays) const {
    for (const VName &A : Arrays) {
      bool Found = false;
      for (size_t J = PS.NumAccs; J < B.Stms[P].Pat.size(); ++J)
        Found = Found || B.Stms[P].Pat[J].Name == A;
      if (!Found)
        return false;
    }
    // Each mapped output must feed only T.
    for (size_t J = PS.NumAccs; J < B.Stms[P].Pat.size(); ++J) {
      std::vector<int> Users;
      bool InResult;
      findUsers(B, B.Stms[P].Pat[J].Name, P, Users, InResult);
      if (InResult)
        return false;
      for (int U : Users)
        if (U != T)
          return false;
    }
    return true;
  }

  /// F6: fuse a parallel stream producer with a consuming reduce (Fig 10a
  /// to Fig 10b).  The fused stream keeps the producer's accumulators and
  /// adds the reduce's.
  void fuseStreamReduce(Body &B, int P, int T) {
    auto *PS = expCast<StreamExp>(B.Stms[P].E.get());
    auto *TR = expCast<ReduceExp>(B.Stms[T].E.get());

    size_t K = TR->Neutral.size();
    std::vector<Type> TAccTys;
    for (size_t I = 0; I < K; ++I)
      TAccTys.push_back(TR->Fn.Params[I].Ty);

    // Combined reduction operator: the component-wise product of the
    // producer's operator (if any) and the consumer's.
    Lambda CombRed = productReducer(PS->Form == StreamExp::FormKind::Red
                                        ? &PS->ReduceFn
                                        : nullptr,
                                    PS->NumAccs, TR->Fn, K);

    // Fold function: run the producer's fold, then reduce its mapped chunk
    // results with the consumer's operator.
    Lambda Fl = renameLambda(PS->FoldFn, NS);
    std::vector<Param> Params;
    Params.push_back(Fl.Params[0]); // chunk size
    for (int I = 0; I < PS->NumAccs; ++I)
      Params.push_back(Fl.Params[1 + I]);
    std::vector<Param> TAccs;
    for (const Type &Ty : TAccTys) {
      TAccs.emplace_back(NS.fresh("acc"), Ty);
      Params.push_back(TAccs.back());
    }
    for (size_t I = 1 + PS->NumAccs; I < Fl.Params.size(); ++I)
      Params.push_back(Fl.Params[I]);

    BodyBuilder BB(NS);
    for (Stm &S : Fl.B.Stms)
      BB.append(std::move(S));
    // Bind the producer's mapped results to names if they are not already.
    size_t NumMapped = Fl.B.Result.size() - PS->NumAccs;
    std::vector<VName> MappedNames(NumMapped);
    for (size_t J = 0; J < NumMapped; ++J) {
      const SubExp &R = Fl.B.Result[PS->NumAccs + J];
      assert(R.isVar() && "mapped stream result must be an array variable");
      MappedNames[J] = R.getVar();
    }
    std::vector<VName> RedInputs;
    for (const VName &A : TR->Arrays) {
      int OutPos = -1;
      for (size_t J = PS->NumAccs; J < B.Stms[P].Pat.size(); ++J)
        if (B.Stms[P].Pat[J].Name == A)
          OutPos = static_cast<int>(J - PS->NumAccs);
      assert(OutPos >= 0 && "reduce input is not a stream output");
      RedInputs.push_back(MappedNames[OutPos]);
    }
    std::vector<SubExp> TAccSE;
    for (const Param &A : TAccs)
      TAccSE.push_back(SubExp::var(A.Name));
    auto Part = BB.bindMulti(
        "part", TAccTys,
        std::make_unique<ReduceExp>(SubExp::var(Fl.Params[0].Name),
                                    renameLambda(TR->Fn, NS), TAccSE,
                                    std::move(RedInputs), TR->Commutative));

    std::vector<SubExp> Res(Fl.B.Result.begin(),
                            Fl.B.Result.begin() + PS->NumAccs);
    for (const VName &N : Part)
      Res.push_back(SubExp::var(N));
    std::vector<Type> RetTys;
    for (int I = 0; I < PS->NumAccs; ++I)
      RetTys.push_back(Fl.RetTypes[I]);
    RetTys.insert(RetTys.end(), TAccTys.begin(), TAccTys.end());

    Lambda Fold(std::move(Params), BB.finish(std::move(Res)),
                std::move(RetTys));

    std::vector<SubExp> AccInit = PS->AccInit;
    AccInit.insert(AccInit.end(), TR->Neutral.begin(), TR->Neutral.end());

    // Pattern: the producer's accumulator outputs followed by the reduce's.
    std::vector<Param> Pat(B.Stms[P].Pat.begin(),
                           B.Stms[P].Pat.begin() + PS->NumAccs);
    Pat.insert(Pat.end(), B.Stms[T].Pat.begin(), B.Stms[T].Pat.end());

    ExpPtr Fused = std::make_unique<StreamExp>(
        StreamExp::FormKind::Red, PS->Width, std::move(CombRed),
        PS->NumAccs + static_cast<int>(K), std::move(AccInit),
        std::move(Fold), PS->Arrays);
    B.Stms[T] = Stm(std::move(Pat), std::move(Fused));
    B.Stms.erase(B.Stms.begin() + P);
  }

  /// The component-wise product of two reduction operators (the "banana
  /// split" product of Section 2.1).
  Lambda productReducer(const Lambda *A, int ANum, const Lambda &B,
                        size_t BNum) {
    Lambda Ar = A ? renameLambda(*A, NS) : Lambda();
    Lambda Br = renameLambda(B, NS);
    std::vector<Param> Params;
    // First halves.
    for (int I = 0; I < ANum; ++I)
      Params.push_back(Ar.Params[I]);
    for (size_t I = 0; I < BNum; ++I)
      Params.push_back(Br.Params[I]);
    // Second halves.
    for (int I = 0; I < ANum; ++I)
      Params.push_back(Ar.Params[ANum + I]);
    for (size_t I = 0; I < BNum; ++I)
      Params.push_back(Br.Params[BNum + I]);

    Body NewBody;
    std::vector<SubExp> Res;
    std::vector<Type> RetTys;
    if (A) {
      for (Stm &S : Ar.B.Stms)
        NewBody.Stms.push_back(std::move(S));
      Res.insert(Res.end(), Ar.B.Result.begin(), Ar.B.Result.end());
      RetTys.insert(RetTys.end(), Ar.RetTypes.begin(), Ar.RetTypes.end());
    }
    for (Stm &S : Br.B.Stms)
      NewBody.Stms.push_back(std::move(S));
    Res.insert(Res.end(), Br.B.Result.begin(), Br.B.Result.end());
    RetTys.insert(RetTys.end(), Br.RetTypes.begin(), Br.RetTypes.end());
    NewBody.Result = std::move(Res);
    return Lambda(std::move(Params), std::move(NewBody), std::move(RetTys));
  }

  /// Horizontal fusion: (map f x, map g y) == map (f * g) (x, y).
  void fuseHorizontal(Body &B, int S, int T) {
    auto *SM = expCast<MapExp>(B.Stms[S].E.get());
    auto *TM = expCast<MapExp>(B.Stms[T].E.get());

    Lambda Sl = renameLambda(SM->Fn, NS);
    Lambda Tl = renameLambda(TM->Fn, NS);

    std::vector<VName> NewInputs = SM->Arrays;
    std::vector<Param> NewParams = Sl.Params;
    NameMap<SubExp> Bind;
    for (size_t I = 0; I < TM->Arrays.size(); ++I) {
      const VName &In = TM->Arrays[I];
      int Existing = -1;
      for (size_t J = 0; J < NewInputs.size(); ++J)
        if (NewInputs[J] == In)
          Existing = static_cast<int>(J);
      if (Existing >= 0) {
        Bind[Tl.Params[I].Name] = SubExp::var(NewParams[Existing].Name);
      } else {
        NewInputs.push_back(In);
        NewParams.push_back(Tl.Params[I]);
      }
    }
    substituteInBody(Bind, Tl.B);

    Body NewBody = std::move(Sl.B);
    for (Stm &St : Tl.B.Stms)
      NewBody.Stms.push_back(std::move(St));
    std::vector<SubExp> Res = NewBody.Result;
    Res.insert(Res.end(), Tl.B.Result.begin(), Tl.B.Result.end());
    NewBody.Result = std::move(Res);

    std::vector<Type> RetTys = Sl.RetTypes;
    RetTys.insert(RetTys.end(), Tl.RetTypes.begin(), Tl.RetTypes.end());

    std::vector<Param> Pat = B.Stms[S].Pat;
    Pat.insert(Pat.end(), B.Stms[T].Pat.begin(), B.Stms[T].Pat.end());

    Lambda Fused(std::move(NewParams), std::move(NewBody),
                 std::move(RetTys));
    B.Stms[T] = Stm(std::move(Pat),
                    std::make_unique<MapExp>(TM->Width, std::move(Fused),
                                             std::move(NewInputs)));
    B.Stms.erase(B.Stms.begin() + S);
  }
};

} // namespace

FusionStats fut::fuseBody(Body &B, NameSource &Names) {
  FusionStats Stats;
  BodyFuser(Names, Stats).run(B);
  return Stats;
}

FusionStats fut::fuseProgram(Program &P, NameSource &Names) {
  trace::ScopedSpan Span("pass:fusion", "compiler");
  FusionStats Total;
  for (FunDef &F : P.Funs) {
    FusionStats S = fuseBody(F.FBody, Names);
    Total.Vertical += S.Vertical;
    Total.Redomap += S.Redomap;
    Total.StreamFusions += S.StreamFusions;
    Total.Horizontal += S.Horizontal;
    Total.HistFusions += S.HistFusions;
  }
  trace::counter("fusion.vertical", Total.Vertical);
  trace::counter("fusion.redomap", Total.Redomap);
  trace::counter("fusion.stream", Total.StreamFusions);
  trace::counter("fusion.horizontal", Total.Horizontal);
  trace::counter("fusion.hist", Total.HistFusions);
  Span.arg("vertical", Total.Vertical);
  Span.arg("redomap", Total.Redomap);
  Span.arg("stream", Total.StreamFusions);
  Span.arg("horizontal", Total.Horizontal);
  Span.arg("hist", Total.HistFusions);
  return Total;
}
