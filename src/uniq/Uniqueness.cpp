//===- Uniqueness.cpp - Alias analysis and in-place update checking ---------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "uniq/Uniqueness.h"

#include "ir/Traversal.h"

using namespace fut;

namespace {

/// The checker's state: Σ (alias sets), which names may legally be
/// consumed, and the set of names already consumed (closed under aliasing).
struct UniqState {
  NameMap<NameSet> Aliases;
  NameMap<bool> Consumable;
  NameSet Consumed;

  NameSet closure(const VName &V) const {
    NameSet S{V};
    auto It = Aliases.find(V);
    if (It != Aliases.end())
      S.insert(It->second.begin(), It->second.end());
    return S;
  }

  void bind(const VName &V, NameSet AliasSet, bool CanConsume) {
    Aliases[V] = std::move(AliasSet);
    Consumable[V] = CanConsume;
  }
};

class UniquenessChecker {
  const Program &P;

public:
  explicit UniquenessChecker(const Program &P) : P(P) {}

  MaybeError checkFun(const FunDef &F) {
    UniqState St;
    NameSet NonUniqueParams;
    for (const Param &Prm : F.Params) {
      St.bind(Prm.Name, {}, Prm.Ty.isUnique());
      if (Prm.Ty.isArray() && !Prm.Ty.isUnique())
        NonUniqueParams.insert(Prm.Name);
    }
    std::vector<NameSet> ResAliases;
    if (auto Err = checkBody(F.FBody, St, ResAliases))
      return Err;

    // A unique result must not alias a non-unique parameter
    // (ALIAS-APPLY-UNIQUE's contract, checked at the definition site).
    for (size_t I = 0; I < F.RetTypes.size() && I < ResAliases.size(); ++I) {
      if (!F.RetTypes[I].isUnique())
        continue;
      for (const VName &A : ResAliases[I])
        if (NonUniqueParams.count(A))
          return CompilerError(
              "unique result " + std::to_string(I + 1) + " of function " +
              F.Name + " aliases non-unique parameter " + A.str());
    }
    return MaybeError::success();
  }

private:
  //===--------------------------------------------------------------------===//
  // Occurrence bookkeeping
  //===--------------------------------------------------------------------===//

  /// Observing a variable: an error if any alias of it was consumed
  /// (the sequencing judgment's (O₂∪C₂)∩C₁ = ∅ side condition).
  MaybeError observe(const VName &V, const UniqState &St, SrcLoc Loc) {
    for (const VName &A : St.closure(V))
      if (St.Consumed.count(A))
        return CompilerError(Loc, "variable " + V.str() +
                                      " is used after " + A.str() +
                                      " was consumed");
    return MaybeError::success();
  }

  /// Consuming a variable: every alias must be consumable and not yet
  /// consumed; afterwards the whole closure is dead.
  MaybeError consume(const VName &V, UniqState &St, SrcLoc Loc) {
    NameSet Closure = St.closure(V);
    for (const VName &A : Closure) {
      if (St.Consumed.count(A))
        return CompilerError(Loc, "variable " + V.str() +
                                      " is consumed, but its alias " +
                                      A.str() + " was already consumed");
      auto It = St.Consumable.find(A);
      if (It != St.Consumable.end() && !It->second)
        return CompilerError(Loc,
                             "consuming " + V.str() +
                                 " is not allowed: it aliases " + A.str() +
                                 ", which is not consumable (mark the "
                                 "parameter unique with '*')");
    }
    St.Consumed.insert(Closure.begin(), Closure.end());
    return MaybeError::success();
  }

  MaybeError observeOperands(const Exp &E, const UniqState &St) {
    MaybeError Result = MaybeError::success();
    forEachFreeOperand(E, [&](const SubExp &S) {
      if (Result || !S.isVar())
        return;
      if (auto Err = observe(S.getVar(), St, E.Loc))
        Result = Err;
    });
    return Result;
  }

  //===--------------------------------------------------------------------===//
  // Alias rules (Fig 5)
  //===--------------------------------------------------------------------===//

  NameSet aliasesOfSubExp(const SubExp &S, const UniqState &St) {
    if (S.isConst())
      return {};
    NameSet Out = St.closure(S.getVar());
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Lambdas (the △ judgment)
  //===--------------------------------------------------------------------===//

  /// Checks a lambda body.  Parameters are consumable inside the lambda;
  /// \p ParamTargets maps each parameter index to the outer variable that
  /// a consumption propagates to (empty name = consumption is an error,
  /// e.g. reduce operators and scan operators must not consume anything).
  /// Free variables consumed inside the lambda are always an error — the
  /// OBSERVE-NONPARAM case of Fig 6 has no consumption counterpart.
  MaybeError checkLambda(const Lambda &L,
                         const std::vector<VName> &ParamTargets,
                         const std::vector<bool> &MayConsume, UniqState &St,
                         const char *What, SrcLoc Loc) {
    UniqState Inner = St;
    for (const Param &Prm : L.Params)
      Inner.bind(Prm.Name, {}, true);
    std::vector<NameSet> ResAliases;
    NameSet Before = St.Consumed;
    if (auto Err = checkBody(L.B, Inner, ResAliases))
      return Err;
    // Translate consumption of parameters to the outer world.
    for (const VName &C : Inner.Consumed) {
      if (Before.count(C))
        continue;
      bool IsParam = false;
      for (size_t I = 0; I < L.Params.size(); ++I) {
        if (L.Params[I].Name != C)
          continue;
        IsParam = true;
        if (I >= MayConsume.size() || !MayConsume[I])
          return CompilerError(Loc, std::string(What) +
                                        " must not consume its parameter " +
                                        C.str());
        if (I < ParamTargets.size() && ParamTargets[I].Tag >= 0)
          if (auto Err = consume(ParamTargets[I], St, Loc))
            return Err;
        break;
      }
      if (!IsParam && !Inner.Aliases.count(C) && St.Aliases.count(C))
        continue; // Alias-closure member handled via its root below.
      if (!IsParam) {
        // Distinguish lambda-local names (fine: they were bound and
        // consumed inside) from free variables (an error).
        bool LocallyBound =
            Inner.Aliases.count(C) && !St.Aliases.count(C) &&
            !St.Consumable.count(C);
        if (!LocallyBound && St.Consumable.count(C))
          return CompilerError(Loc, std::string(What) +
                                        " consumes free variable " +
                                        C.str() +
                                        ", which is bound outside of it");
      }
    }
    return MaybeError::success();
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Checks \p E, records consumption in \p St, and reports the alias sets
  /// of the produced values in \p Res.
  MaybeError checkExp(const Exp &E, UniqState &St,
                      std::vector<NameSet> &Res) {
    // Every operand is observed (SAFE-VAR); consumption below happens
    // after observation within the same statement, which is the paper's
    // sequencing of the subterms.
    if (auto Err = observeOperands(E, St))
      return Err;

    switch (E.kind()) {
    case ExpKind::SubExpE:
      Res.push_back(aliasesOfSubExp(expCast<SubExpExp>(&E)->Val, St));
      return MaybeError::success();

    case ExpKind::BinOpE:
    case ExpKind::UnOpE:
    case ExpKind::ConvOpE:
    case ExpKind::Apply:
      break; // Handled below / after switch.

    case ExpKind::If: {
      const auto *X = expCast<IfExp>(&E);
      UniqState ThenSt = St, ElseSt = St;
      std::vector<NameSet> ThenRes, ElseRes;
      if (auto Err = checkBody(X->Then, ThenSt, ThenRes))
        return Err;
      if (auto Err = checkBody(X->Else, ElseSt, ElseRes))
        return Err;
      St.Consumed = ThenSt.Consumed;
      St.Consumed.insert(ElseSt.Consumed.begin(), ElseSt.Consumed.end());
      for (size_t I = 0; I < ThenRes.size(); ++I) {
        NameSet S = ThenRes[I];
        if (I < ElseRes.size())
          S.insert(ElseRes[I].begin(), ElseRes[I].end());
        Res.push_back(std::move(S));
      }
      return MaybeError::success();
    }

    case ExpKind::Index: {
      const auto *X = expCast<IndexExp>(&E);
      // ALIAS-INDEXARRAY vs ALIAS-SLICEARRAY: a full read is fresh, a
      // slice aliases the source.
      // We do not know the rank here without a type env; treat any index
      // as potentially a slice only if the value is used as an array,
      // which we approximate by always aliasing (conservative and safe).
      Res.push_back(St.closure(X->Arr));
      return MaybeError::success();
    }

    case ExpKind::Loop: {
      const auto *X = expCast<LoopExp>(&E);
      UniqState Inner = St;
      for (const Param &Prm : X->MergeParams)
        Inner.bind(Prm.Name, {}, true);
      Inner.bind(X->IndexVar, {}, false);
      NameSet Before = St.Consumed;
      std::vector<NameSet> BodyRes;
      if (auto Err = checkBody(X->LoopBody, Inner, BodyRes))
        return Err;
      // Consumption of a merge parameter consumes its initial value; any
      // other free-variable consumption inside a loop would repeat per
      // iteration and is rejected.
      for (const VName &C : Inner.Consumed) {
        if (Before.count(C))
          continue;
        bool IsMerge = false;
        for (size_t I = 0; I < X->MergeParams.size(); ++I) {
          if (X->MergeParams[I].Name != C)
            continue;
          IsMerge = true;
          if (X->MergeInit[I].isVar())
            if (auto Err = consume(X->MergeInit[I].getVar(), St, E.Loc))
              return Err;
          break;
        }
        if (!IsMerge && St.Consumable.count(C))
          return CompilerError(E.Loc,
                               "loop body consumes " + C.str() +
                                   ", which is bound outside the loop");
      }
      // Results alias nothing from outside (the loop's values are merged
      // through parameters whose initial aliases were consumed if needed).
      for (size_t I = 0; I < X->MergeParams.size(); ++I)
        Res.push_back({});
      return MaybeError::success();
    }

    case ExpKind::Update: {
      const auto *X = expCast<UpdateExp>(&E);
      // SAFE-UPDATE: consumes the array, observes the value.  Result
      // aliases Σ(va) — the update lives in va's memory.
      NameSet ResultAliases;
      auto It = St.Aliases.find(X->Arr);
      if (It != St.Aliases.end())
        ResultAliases = It->second;
      if (auto Err = consume(X->Arr, St, E.Loc))
        return Err;
      Res.push_back(std::move(ResultAliases));
      return MaybeError::success();
    }

    case ExpKind::Iota:
    case ExpKind::Replicate:
    case ExpKind::Copy:
      Res.push_back({});
      return MaybeError::success();

    case ExpKind::Rearrange:
      Res.push_back(St.closure(expCast<RearrangeExp>(&E)->Arr));
      return MaybeError::success();

    case ExpKind::Reshape:
      Res.push_back(St.closure(expCast<ReshapeExp>(&E)->Arr));
      return MaybeError::success();

    case ExpKind::Slice:
      Res.push_back(St.closure(expCast<SliceExp>(&E)->Arr));
      return MaybeError::success();

    case ExpKind::Concat: {
      NameSet S;
      for (const VName &A : expCast<ConcatExp>(&E)->Arrays) {
        NameSet C = St.closure(A);
        S.insert(C.begin(), C.end());
      }
      Res.push_back(std::move(S));
      return MaybeError::success();
    }

    case ExpKind::Map: {
      const auto *X = expCast<MapExp>(&E);
      std::vector<VName> Targets = X->Arrays;
      std::vector<bool> MayConsume(X->Arrays.size(), true);
      if (auto Err = checkLambda(X->Fn, Targets, MayConsume, St,
                                 "a map function", E.Loc))
        return Err;
      for (size_t I = 0; I < X->Fn.RetTypes.size(); ++I)
        Res.push_back({});
      return MaybeError::success();
    }

    case ExpKind::Reduce: {
      const auto *X = expCast<ReduceExp>(&E);
      std::vector<VName> Targets;
      std::vector<bool> MayConsume(X->Fn.Params.size(), false);
      if (auto Err = checkLambda(X->Fn, Targets, MayConsume, St,
                                 "a reduction operator", E.Loc))
        return Err;
      for (size_t I = 0; I < X->Neutral.size(); ++I)
        Res.push_back({});
      return MaybeError::success();
    }

    case ExpKind::Scan: {
      const auto *X = expCast<ScanExp>(&E);
      std::vector<VName> Targets;
      std::vector<bool> MayConsume(X->Fn.Params.size(), false);
      if (auto Err = checkLambda(X->Fn, Targets, MayConsume, St,
                                 "a scan operator", E.Loc))
        return Err;
      for (size_t I = 0; I < X->Neutral.size(); ++I)
        Res.push_back({});
      return MaybeError::success();
    }

    case ExpKind::ReduceByIndex: {
      const auto *X = expCast<ReduceByIndexExp>(&E);
      // Neither lambda may consume anything (both run many times per
      // destination bin).
      std::vector<VName> CTargets;
      std::vector<bool> CMay(X->CombineFn.Params.size(), false);
      if (auto Err = checkLambda(X->CombineFn, CTargets, CMay, St,
                                 "a reduce_by_index operator", E.Loc))
        return Err;
      std::vector<VName> VTargets;
      std::vector<bool> VMay(X->ValueFn.Params.size(), false);
      if (auto Err = checkLambda(X->ValueFn, VTargets, VMay, St,
                                 "a reduce_by_index value function", E.Loc))
        return Err;
      // SAFE-UPDATE shape: the destination is consumed and the result
      // lives in its memory.
      NameSet ResultAliases;
      auto It = St.Aliases.find(X->Dest);
      if (It != St.Aliases.end())
        ResultAliases = It->second;
      if (auto Err = consume(X->Dest, St, E.Loc))
        return Err;
      Res.push_back(std::move(ResultAliases));
      return MaybeError::success();
    }

    case ExpKind::Stream: {
      const auto *X = expCast<StreamExp>(&E);
      if (X->Form == StreamExp::FormKind::Red) {
        std::vector<VName> RTargets;
        std::vector<bool> RMay(X->ReduceFn.Params.size(), false);
        if (auto Err = checkLambda(X->ReduceFn, RTargets, RMay, St,
                                   "a stream_red operator", E.Loc))
          return Err;
      }
      // Fold function: params are [chunksize, accs..., chunks...].
      // Accumulators may be consumed (their initial values are consumed);
      // chunk params may be consumed (consuming the input arrays, whose
      // chunks are disjoint, so this is race-free — Section 3's point).
      std::vector<VName> Targets;
      std::vector<bool> MayConsume;
      Targets.emplace_back(); // chunk size: scalar, never consumed
      MayConsume.push_back(false);
      for (int I = 0; I < X->NumAccs; ++I) {
        if (X->AccInit[I].isVar())
          Targets.push_back(X->AccInit[I].getVar());
        else
          Targets.emplace_back();
        MayConsume.push_back(true);
      }
      for (const VName &A : X->Arrays) {
        Targets.push_back(A);
        MayConsume.push_back(true);
      }
      if (auto Err = checkLambda(X->FoldFn, Targets, MayConsume, St,
                                 "a stream fold function", E.Loc))
        return Err;
      for (size_t I = 0; I < X->FoldFn.RetTypes.size(); ++I)
        Res.push_back({});
      return MaybeError::success();
    }

    case ExpKind::Kernel: {
      const auto *X = expCast<KernelExp>(&E);
      UniqState Inner = St;
      for (const VName &T : X->ThreadIndices)
        Inner.bind(T, {}, false);
      if (X->isSegmented())
        Inner.bind(X->SegIndex, {}, false);
      std::vector<NameSet> BodyRes;
      if (auto Err = checkBody(X->ThreadBody, Inner, BodyRes))
        return Err;
      if (X->Op == KernelExp::OpKind::SegHist) {
        // The histogram destination is updated in place on the device.
        NameSet ResultAliases;
        auto It = St.Aliases.find(X->HistDest);
        if (It != St.Aliases.end())
          ResultAliases = It->second;
        if (auto Err = consume(X->HistDest, St, E.Loc))
          return Err;
        Res.push_back(std::move(ResultAliases));
        return MaybeError::success();
      }
      for (size_t I = 0; I < X->RetTypes.size(); ++I)
        Res.push_back({});
      return MaybeError::success();
    }
    }

    // Scalar operators produce fresh scalars.
    if (E.kind() == ExpKind::BinOpE || E.kind() == ExpKind::UnOpE ||
        E.kind() == ExpKind::ConvOpE) {
      Res.push_back({});
      return MaybeError::success();
    }

    // Function application: consume arguments in unique positions
    // (SAFE/ALIAS-APPLY).
    const auto *X = expCast<ApplyExp>(&E);
    const FunDef *Callee = P.findFun(X->Func);
    if (!Callee)
      return CompilerError(E.Loc, "call to unknown function " + X->Func);
    NameSet NonUniqueArgAliases;
    for (size_t I = 0; I < X->Args.size() && I < Callee->Params.size();
         ++I) {
      const Type &PT = Callee->Params[I].Ty;
      if (!X->Args[I].isVar())
        continue;
      if (PT.isUnique()) {
        if (auto Err = consume(X->Args[I].getVar(), St, E.Loc))
          return Err;
      } else if (PT.isArray()) {
        NameSet C = St.closure(X->Args[I].getVar());
        NonUniqueArgAliases.insert(C.begin(), C.end());
      }
    }
    for (const Type &RT : Callee->RetTypes)
      Res.push_back(RT.isUnique() ? NameSet{} : NonUniqueArgAliases);
    return MaybeError::success();
  }

  MaybeError checkBody(const Body &B, UniqState &St,
                       std::vector<NameSet> &ResAliases) {
    for (const Stm &S : B.Stms) {
      std::vector<NameSet> Res;
      if (auto Err = checkExp(*S.E, St, Res))
        return Err;
      for (size_t I = 0; I < S.Pat.size(); ++I) {
        // ALIAS-INDEXARRAY vs ALIAS-SLICEARRAY and friends: a scalar value
        // never aliases an array, whatever expression produced it.
        NameSet A;
        if (!S.Pat[I].Ty.isScalar() && I < Res.size())
          A = Res[I];
        St.bind(S.Pat[I].Name, std::move(A), true);
      }
    }
    for (const SubExp &R : B.Result) {
      if (R.isVar()) {
        if (auto Err = observe(R.getVar(), St, SrcLoc()))
          return Err;
        ResAliases.push_back(St.closure(R.getVar()));
      } else {
        ResAliases.push_back({});
      }
    }
    return MaybeError::success();
  }

public:
  MaybeError checkNonUniqueParamConsumption(const FunDef &F) {
    // Re-run with tracking (already folded into checkFun via Consumable
    // flags); kept for interface symmetry.
    return MaybeError::success();
  }
};

} // namespace

MaybeError fut::checkFunUniqueness(const Program &P, const FunDef &F) {
  return UniquenessChecker(P).checkFun(F);
}

MaybeError fut::checkProgramUniqueness(const Program &P) {
  for (const FunDef &F : P.Funs)
    if (auto Err = checkFunUniqueness(P, F))
      return Err;
  return MaybeError::success();
}
