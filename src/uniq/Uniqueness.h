//===- Uniqueness.h - Alias analysis and in-place update checking -*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniqueness type system of Section 3: alias analysis (the judgment
/// Σ ⊢ e ⇒ ⟨σ₁,…,σₙ⟩ of Fig 5) and in-place-update safety checking (the
/// occurrence traces ⟨C,O⟩, the sequencing judgment ≫, and the parameter
/// substitution judgment △ of Fig 6).  An expression may observe a variable
/// only before any alias of it is consumed; a variable is consumed by being
/// the source of an in-place update or by being passed as a unique function
/// argument; lambdas may consume only their own parameters (which counts as
/// consuming the corresponding SOAC input, preserving map's parallel
/// semantics); function bodies may consume only unique parameters; and a
/// unique function result must not alias any non-unique parameter.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_UNIQ_UNIQUENESS_H
#define FUTHARKCC_UNIQ_UNIQUENESS_H

#include "ir/IR.h"
#include "support/Error.h"

namespace fut {

/// Checks the whole program; returns the first violation found.
MaybeError checkProgramUniqueness(const Program &P);

/// Checks a single function (callees are looked up in \p P for their
/// uniqueness signatures).
MaybeError checkFunUniqueness(const Program &P, const FunDef &F);

} // namespace fut

#endif // FUTHARKCC_UNIQ_UNIQUENESS_H
