//===- Verify.h - Type-rederiving IR verifier -------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR verifier: a stronger companion to the structural checker in
/// Check.h that re-derives the type of every expression bottom-up from
/// binding annotations and rejects a program the moment any pass emits
/// ill-typed code.  Where Check.h answers "is this tree shaped like IR",
/// the verifier answers "does this tree still mean what its types claim":
///
///   * SSA discipline: unique binding tags, every use dominated by its
///     binding, no dangling names (including inside symbolic dimensions),
///   * bottom-up type agreement: the type derived for each expression must
///     match the pattern that binds it (element kind and rank exactly;
///     constant dimensions exactly; symbolic dimensions are wildcards since
///     passes rename them freely),
///   * SOAC boundaries: lambda parameter/return types against input-array
///     row types, neutral elements against accumulator types, widths
///     against input outer dimensions,
///   * consumption sanity: an array consumed by an in-place update is not
///     observed again in the same body (the post-`uniq` discipline that
///     later passes must preserve),
///   * post-flattening: no SOAC survives at host level (nested parallelism
///     must be gone), kernels never nest,
///   * kernel well-formedness: grid/thread-index agreement, layout
///     permutations valid, declared KInput types consistent with the bound
///     arrays (these widths feed TiledElementBytes in the simulator), and
///     result types consistent with grid dimensions and thread-body
///     results.
///
/// Violations are reported as typed ErrorKind::Verify diagnostics naming
/// the pass that produced the program and the offending binding, so a bad
/// rewrite is caught at the pass boundary instead of surfacing as a wrong
/// answer deep in gpusim.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_CHECK_VERIFY_H
#define FUTHARKCC_CHECK_VERIFY_H

#include "ir/IR.h"
#include "mem/MemPlan.h"
#include "shard/ShardPlan.h"
#include "support/Error.h"

#include <string>

namespace fut {

/// What the verifier may assume about the program's position in the
/// pipeline.  The driver tightens these as passes establish invariants.
struct VerifyOptions {
  /// Kernel extraction has run: parallelism lives in KernelExps, and SOACs
  /// may only appear sequentialised inside kernel thread bodies.
  bool Flattened = false;

  /// With Flattened set, still tolerate SOACs in host-level code.  Used by
  /// the ablation pipelines that deliberately leave reductions on the host
  /// (FlattenOptions::KernelizeReduce = false).
  bool AllowHostSOACs = false;

  /// Enforce that an array consumed by an in-place update is not observed
  /// again afterwards in the same body (direct consumption only; aliases
  /// are the uniqueness checker's job).
  bool CheckConsumption = true;
};

/// Verifies the whole program as left by \p Pass; returns the first
/// violation as an ErrorKind::Verify diagnostic naming the pass and the
/// offending binding.
MaybeError verifyProgram(const Program &P, const std::string &Pass,
                         const VerifyOptions &Opts = {});

/// Verifies a single function (callees are looked up in \p P).
MaybeError verifyFun(const Program &P, const FunDef &F,
                     const std::string &Pass, const VerifyOptions &Opts = {});

/// Verifies a static memory plan against the (flattened) program it was
/// computed for, by independently re-deriving liveness and aliasing:
///
///   * every kernel output array is placed by the plan,
///   * aliases recorded in the plan correspond to real alias edges (let
///     bindings, uniqueness-sanctioned consumption, loop results) and
///     land in the same slab as their source,
///   * no two simultaneously-live arrays overlap within a slab unless the
///     re-derived aliasing proves they share storage legitimately (for a
///     hoisted double-buffered slab the two halves may hold concurrently
///     live tenants).
///
/// Violations are ErrorKind::Verify diagnostics naming \p Pass, the
/// function, the slab and both offending arrays.
MaybeError verifyMemoryPlan(const Program &P, const mem::MemoryPlan &MP,
                            const std::string &Pass);

/// Verifies a multi-device shard plan against the (flattened) program it
/// was computed for, by independently re-deriving the decomposition:
///
///   * a kernel marked sharded is actually block-partitionable and its
///     recorded blocks partition the outer dimension exactly (every row
///     owned by one device — no overlap, no gap),
///   * every inter-device transfer the decomposition requires (a
///     partitioned value consumed whole, or observed by the host) is
///     present in the plan,
///   * the re-derived per-device peak bytes fit each device's budget.
///
/// Violations are ErrorKind::Verify diagnostics naming \p Pass, the
/// function, the kernel and the offending rows or arrays.
MaybeError verifyShardPlan(const Program &P, const shard::ShardPlan &SP,
                           const std::string &Pass);

} // namespace fut

#endif // FUTHARKCC_CHECK_VERIFY_H
