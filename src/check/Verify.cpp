//===- Verify.cpp - Type-rederiving IR verifier ---------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "check/Verify.h"

#include "ir/Traversal.h"

#include <algorithm>

using namespace fut;

namespace {

/// A dimension whose value the verifier cannot re-derive (existential
/// sizes, concat sums over symbolic operands).  Any symbolic dimension is
/// treated as a wildcard by dimsAgree, so one shared sentinel suffices.
Dim unknownDim() { return SubExp::var(VName("?", -2)); }

/// Two dimensions agree unless both are constants with different values;
/// symbolic dimensions are wildcards (passes rename and substitute them
/// freely, so name identity is not an invariant).
bool dimsAgree(const Dim &A, const Dim &B) {
  if (A.isConst() && B.isConst())
    return A.getConst().asInt64() == B.getConst().asInt64();
  return true;
}

/// Element kind and rank exactly, constant dimensions exactly.
bool typesAgree(const Type &A, const Type &B) {
  if (A.elemKind() != B.elemKind() || A.rank() != B.rank())
    return false;
  for (int I = 0; I < A.rank(); ++I)
    if (!dimsAgree(A.shape()[I], B.shape()[I]))
      return false;
  return true;
}

bool allAgree(const std::vector<Type> &A, const std::vector<Type> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!typesAgree(A[I], B[I]))
      return false;
  return true;
}

std::string typeListStr(const std::vector<Type> &Ts) {
  std::string S = "(";
  for (size_t I = 0; I < Ts.size(); ++I)
    S += (I ? ", " : "") + Ts[I].str();
  return S + ")";
}

class Verifier {
  const Program &Prog;
  const VerifyOptions &Opts;
  const std::string &Pass;
  std::string FunName;

  NameMap<Type> Scope;
  NameSet EverBound;
  /// > 0 while inside a kernel thread body (kernels must not nest).
  int KernelDepth = 0;

public:
  Verifier(const Program &Prog, const VerifyOptions &Opts,
           const std::string &Pass)
      : Prog(Prog), Opts(Opts), Pass(Pass) {}

  MaybeError verifyFunDef(const FunDef &F) {
    FunName = F.Name;
    Scope.clear();
    EverBound.clear();
    KernelDepth = 0;
    for (const Param &P : F.Params)
      if (auto Err = bind(P, "parameter " + P.Name.str()))
        return Err;
    auto RTs = checkBody(F.FBody, "result of " + F.Name);
    if (!RTs)
      return RTs.getError();
    if (RTs->size() != F.RetTypes.size())
      return err("result of " + F.Name,
                 "returns " + std::to_string(RTs->size()) +
                     " values but declares " +
                     std::to_string(F.RetTypes.size()));
    for (size_t I = 0; I < RTs->size(); ++I)
      if (!typesAgree((*RTs)[I], F.RetTypes[I].asNonUnique()))
        return err("result of " + F.Name,
                   "result " + std::to_string(I) + " has type " +
                       (*RTs)[I].str() + " but the function declares " +
                       F.RetTypes[I].str());
    return MaybeError::success();
  }

private:
  CompilerError err(const std::string &Binding, const std::string &Msg) {
    return CompilerError(ErrorKind::Verify,
                         "after pass '" + Pass + "': in function '" +
                             FunName + "': " + Binding + ": " + Msg);
  }

  MaybeError bind(const Param &P, const std::string &Where) {
    if (EverBound.count(P.Name))
      return err(Where, "name " + P.Name.str() + " bound twice");
    EverBound.insert(P.Name);
    // Symbolic dimensions must be in scope or are registered as fresh
    // existential sizes at their first appearance.
    for (const Dim &D : P.Ty.shape())
      if (D.isVar() && !Scope.count(D.getVar())) {
        Scope[D.getVar()] = Type::scalar(ScalarKind::I32);
        EverBound.insert(D.getVar());
      }
    Scope[P.Name] = P.Ty;
    return MaybeError::success();
  }

  ErrorOr<Type> typeOfSub(const SubExp &S, const std::string &Where) {
    if (S.isConst())
      return Type::scalar(S.getConst().kind());
    auto It = Scope.find(S.getVar());
    if (It == Scope.end())
      return err(Where, "use of unbound name " + S.getVar().str());
    return It->second;
  }

  MaybeError wantIntScalar(const SubExp &S, const std::string &What,
                           const std::string &Where) {
    auto T = typeOfSub(S, Where);
    if (!T)
      return T.getError();
    if (!T->isScalar() || !isIntKind(T->elemKind()))
      return err(Where, What + " has type " + T->str() +
                            "; expected an integer scalar");
    return MaybeError::success();
  }

  ErrorOr<Type> arrayType(const VName &V, const std::string &Where) {
    auto T = typeOfSub(SubExp::var(V), Where);
    if (!T)
      return T.getError();
    if (!T->isArray())
      return err(Where, V.str() + " used as an array but has scalar type " +
                            T->str());
    return *T;
  }

  /// Statically checks a constant index against a constant dimension.
  MaybeError boundsCheck(const SubExp &Idx, const Dim &D,
                         const std::string &Where) {
    if (!Idx.isConst())
      return MaybeError::success();
    int64_t I = Idx.getConst().asInt64();
    if (I < 0)
      return err(Where, "constant index " + std::to_string(I) +
                            " is negative");
    if (D.isConst() && I >= D.getConst().asInt64())
      return err(Where, "constant index " + std::to_string(I) +
                            " out of bounds for dimension of size " +
                            D.getConst().str());
    return MaybeError::success();
  }

  /// Verifies a lambda: binds parameters, verifies the body, and demands
  /// the derived result types agree with the declared return types.
  /// \p ArgTypes, when non-null, are the types the call site feeds the
  /// parameters (checked element-kind/rank/const-dim compatible).
  MaybeError checkLambda(const Lambda &L, const std::vector<Type> *ArgTypes,
                         const std::string &Where) {
    if (ArgTypes && L.Params.size() != ArgTypes->size())
      return err(Where, "lambda takes " + std::to_string(L.Params.size()) +
                            " parameters but is applied to " +
                            std::to_string(ArgTypes->size()) + " values");
    NameMap<Type> Saved = Scope;
    for (size_t I = 0; I < L.Params.size(); ++I) {
      if (ArgTypes && !typesAgree(L.Params[I].Ty.asNonUnique(),
                                  (*ArgTypes)[I].asNonUnique()))
        return err(Where, "lambda parameter " + L.Params[I].Name.str() +
                              " has type " + L.Params[I].Ty.str() +
                              " but is applied to a value of type " +
                              (*ArgTypes)[I].str());
      if (auto Err = bind(L.Params[I], Where))
        return Err;
    }
    auto RTs = checkBody(L.B, Where);
    if (!RTs)
      return RTs.getError();
    Scope = std::move(Saved);
    if (!allAgree(*RTs, L.RetTypes))
      return err(Where, "lambda body produces " + typeListStr(*RTs) +
                            " but declares " + typeListStr(L.RetTypes));
    return MaybeError::success();
  }

  //===-- Expression type derivation --------------------------------------===//

  ErrorOr<std::vector<Type>> checkExp(const Exp &E, const std::string &Where) {
    // Every free operand must be in scope, whatever the construct.
    MaybeError OperandErr = MaybeError::success();
    forEachFreeOperand(E, [&](const SubExp &S) {
      if (!OperandErr && S.isVar() && !Scope.count(S.getVar()))
        OperandErr = err(Where, "use of unbound name " + S.getVar().str());
    });
    if (OperandErr)
      return OperandErr.getError();

    if (Opts.Flattened && KernelDepth == 0 && !Opts.AllowHostSOACs &&
        E.isSOAC())
      return err(Where, std::string("host-level ") + expKindName(E.kind()) +
                            " after flattening (nested parallelism must "
                            "have been extracted into kernels)");

    switch (E.kind()) {
    case ExpKind::SubExpE: {
      auto T = typeOfSub(expCast<SubExpExp>(&E)->Val, Where);
      if (!T)
        return T.getError();
      return std::vector<Type>{*T};
    }

    case ExpKind::BinOpE: {
      const auto *X = expCast<BinOpExp>(&E);
      auto TA = typeOfSub(X->A, Where);
      if (!TA)
        return TA.getError();
      auto TB = typeOfSub(X->B, Where);
      if (!TB)
        return TB.getError();
      if (!TA->isScalar() || !TB->isScalar())
        return err(Where, std::string("operator ") + binOpName(X->Op) +
                              " applied to non-scalar operands " +
                              TA->str() + ", " + TB->str());
      if (TA->elemKind() != TB->elemKind())
        return err(Where, std::string("operator ") + binOpName(X->Op) +
                              " applied to mismatched kinds " + TA->str() +
                              " and " + TB->str());
      if (!binOpDefinedOn(X->Op, TA->elemKind()))
        return err(Where, std::string("operator ") + binOpName(X->Op) +
                              " undefined on " +
                              scalarKindName(TA->elemKind()));
      return std::vector<Type>{
          Type::scalar(binOpResultKind(X->Op, TA->elemKind()))};
    }

    case ExpKind::UnOpE: {
      const auto *X = expCast<UnOpExp>(&E);
      auto TA = typeOfSub(X->A, Where);
      if (!TA)
        return TA.getError();
      if (!TA->isScalar())
        return err(Where, std::string("operator ") + unOpName(X->Op) +
                              " applied to non-scalar operand " + TA->str());
      if (!unOpDefinedOn(X->Op, TA->elemKind()))
        return err(Where, std::string("operator ") + unOpName(X->Op) +
                              " undefined on " +
                              scalarKindName(TA->elemKind()));
      return std::vector<Type>{
          Type::scalar(unOpResultKind(X->Op, TA->elemKind()))};
    }

    case ExpKind::ConvOpE: {
      const auto *X = expCast<ConvOpExp>(&E);
      auto TA = typeOfSub(X->A, Where);
      if (!TA)
        return TA.getError();
      if (!TA->isScalar() || TA->elemKind() != X->Op.From)
        return err(Where, std::string("conversion from ") +
                              scalarKindName(X->Op.From) +
                              " applied to operand of type " + TA->str());
      return std::vector<Type>{Type::scalar(X->Op.To)};
    }

    case ExpKind::If: {
      const auto *X = expCast<IfExp>(&E);
      auto TC = typeOfSub(X->Cond, Where);
      if (!TC)
        return TC.getError();
      if (!TC->isScalar() || TC->elemKind() != ScalarKind::Bool)
        return err(Where, "if condition has type " + TC->str() +
                              "; expected bool");
      NameMap<Type> Saved = Scope;
      auto TT = checkBody(X->Then, Where + " (then)");
      if (!TT)
        return TT.getError();
      Scope = Saved;
      auto TE = checkBody(X->Else, Where + " (else)");
      if (!TE)
        return TE.getError();
      Scope = std::move(Saved);
      if (!allAgree(*TT, X->RetTypes))
        return err(Where, "then-branch produces " + typeListStr(*TT) +
                              " but the if declares " +
                              typeListStr(X->RetTypes));
      if (!allAgree(*TE, X->RetTypes))
        return err(Where, "else-branch produces " + typeListStr(*TE) +
                              " but the if declares " +
                              typeListStr(X->RetTypes));
      return X->RetTypes;
    }

    case ExpKind::Index: {
      const auto *X = expCast<IndexExp>(&E);
      auto TA = arrayType(X->Arr, Where);
      if (!TA)
        return TA.getError();
      if (static_cast<int>(X->Indices.size()) > TA->rank())
        return err(Where, "indexing " + X->Arr.str() + " of rank " +
                              std::to_string(TA->rank()) + " with " +
                              std::to_string(X->Indices.size()) +
                              " indices");
      for (size_t I = 0; I < X->Indices.size(); ++I) {
        if (auto Err = wantIntScalar(X->Indices[I],
                                     "index " + std::to_string(I), Where))
          return Err;
        if (auto Err = boundsCheck(X->Indices[I], TA->shape()[I], Where))
          return Err;
      }
      return std::vector<Type>{
          TA->peel(static_cast<int>(X->Indices.size()))};
    }

    case ExpKind::Apply: {
      const auto *X = expCast<ApplyExp>(&E);
      const FunDef *Callee = Prog.findFun(X->Func);
      if (!Callee)
        return err(Where, "call of unknown function " + X->Func);
      if (X->Args.size() != Callee->Params.size())
        return err(Where, "call of " + X->Func + " with " +
                              std::to_string(X->Args.size()) +
                              " arguments; expected " +
                              std::to_string(Callee->Params.size()));
      for (size_t I = 0; I < X->Args.size(); ++I) {
        auto TA = typeOfSub(X->Args[I], Where);
        if (!TA)
          return TA.getError();
        if (!typesAgree(TA->asNonUnique(), Callee->Params[I].Ty.asNonUnique()))
          return err(Where, "argument " + std::to_string(I) + " of " +
                                X->Func + " has type " + TA->str() +
                                "; expected " + Callee->Params[I].Ty.str());
      }
      // Callee return shapes may reference callee-local names; export
      // their ranks and element kinds with wildcard dimensions.
      std::vector<Type> Out;
      for (const Type &T : Callee->RetTypes)
        Out.push_back(Type(T.elemKind(),
                           std::vector<Dim>(T.rank(), unknownDim())));
      return Out;
    }

    case ExpKind::Loop: {
      const auto *X = expCast<LoopExp>(&E);
      if (X->MergeInit.size() != X->MergeParams.size())
        return err(Where, "loop has " + std::to_string(X->MergeInit.size()) +
                              " initial merge values for " +
                              std::to_string(X->MergeParams.size()) +
                              " merge parameters");
      if (auto Err = wantIntScalar(X->Bound, "loop bound", Where))
        return Err;
      for (size_t I = 0; I < X->MergeInit.size(); ++I) {
        auto TI = typeOfSub(X->MergeInit[I], Where);
        if (!TI)
          return TI.getError();
        if (!typesAgree(TI->asNonUnique(),
                        X->MergeParams[I].Ty.asNonUnique()))
          return err(Where, "loop merge parameter " +
                                X->MergeParams[I].Name.str() +
                                " has type " + X->MergeParams[I].Ty.str() +
                                " but is initialised with a value of type " +
                                TI->str());
      }
      NameMap<Type> Saved = Scope;
      if (auto Err = bind(Param(X->IndexVar, Type::scalar(ScalarKind::I32)),
                          Where))
        return Err;
      for (const Param &P : X->MergeParams)
        if (auto Err = bind(P, Where))
          return Err;
      auto TB = checkBody(X->LoopBody, Where + " (loop body)");
      if (!TB)
        return TB.getError();
      Scope = std::move(Saved);
      std::vector<Type> MergeTys;
      for (const Param &P : X->MergeParams)
        MergeTys.push_back(P.Ty.asNonUnique());
      std::vector<Type> BodyTys;
      for (const Type &T : *TB)
        BodyTys.push_back(T.asNonUnique());
      if (!allAgree(BodyTys, MergeTys))
        return err(Where, "loop body produces " + typeListStr(*TB) +
                              " but the merge parameters have types " +
                              typeListStr(MergeTys));
      return MergeTys;
    }

    case ExpKind::Update: {
      const auto *X = expCast<UpdateExp>(&E);
      auto TA = arrayType(X->Arr, Where);
      if (!TA)
        return TA.getError();
      if (static_cast<int>(X->Indices.size()) > TA->rank())
        return err(Where, "in-place update of " + X->Arr.str() +
                              " of rank " + std::to_string(TA->rank()) +
                              " with " + std::to_string(X->Indices.size()) +
                              " indices");
      for (size_t I = 0; I < X->Indices.size(); ++I) {
        if (auto Err = wantIntScalar(X->Indices[I],
                                     "index " + std::to_string(I), Where))
          return Err;
        if (auto Err = boundsCheck(X->Indices[I], TA->shape()[I], Where))
          return Err;
      }
      auto TV = typeOfSub(X->Value, Where);
      if (!TV)
        return TV.getError();
      Type Want = TA->peel(static_cast<int>(X->Indices.size()));
      if (!typesAgree(TV->asNonUnique(), Want.asNonUnique()))
        return err(Where, "in-place update writes a value of type " +
                              TV->str() + " into an element slot of type " +
                              Want.str());
      return std::vector<Type>{TA->asNonUnique()};
    }

    case ExpKind::Iota: {
      const auto *X = expCast<IotaExp>(&E);
      if (auto Err = wantIntScalar(X->N, "iota length", Where))
        return Err;
      if (!isIntKind(X->Elem))
        return err(Where, "iota of non-integer element kind");
      return std::vector<Type>{Type::array(X->Elem, {X->N})};
    }

    case ExpKind::Replicate: {
      const auto *X = expCast<ReplicateExp>(&E);
      if (auto Err = wantIntScalar(X->N, "replicate count", Where))
        return Err;
      auto TV = typeOfSub(X->Val, Where);
      if (!TV)
        return TV.getError();
      if (!typesAgree(TV->asNonUnique(), X->ValType.asNonUnique()))
        return err(Where, "replicate declares element type " +
                              X->ValType.str() +
                              " but replicates a value of type " +
                              TV->str());
      return std::vector<Type>{X->ValType.asNonUnique().arrayOf(X->N)};
    }

    case ExpKind::Rearrange: {
      const auto *X = expCast<RearrangeExp>(&E);
      auto TA = arrayType(X->Arr, Where);
      if (!TA)
        return TA.getError();
      if (static_cast<int>(X->Perm.size()) != TA->rank())
        return err(Where, "rearrange permutation of size " +
                              std::to_string(X->Perm.size()) +
                              " applied to " + X->Arr.str() + " of rank " +
                              std::to_string(TA->rank()));
      std::vector<bool> Seen(X->Perm.size(), false);
      for (int P : X->Perm) {
        if (P < 0 || P >= static_cast<int>(X->Perm.size()) || Seen[P])
          return err(Where, "invalid rearrange permutation");
        Seen[P] = true;
      }
      std::vector<Dim> Shape;
      for (int P : X->Perm)
        Shape.push_back(TA->shape()[P]);
      return std::vector<Type>{Type(TA->elemKind(), std::move(Shape))};
    }

    case ExpKind::Reshape: {
      const auto *X = expCast<ReshapeExp>(&E);
      auto TA = arrayType(X->Arr, Where);
      if (!TA)
        return TA.getError();
      if (X->NewShape.empty())
        return err(Where, "reshape to rank 0");
      for (const SubExp &D : X->NewShape)
        if (auto Err = wantIntScalar(D, "reshape dimension", Where))
          return Err;
      return std::vector<Type>{
          Type(TA->elemKind(),
               std::vector<Dim>(X->NewShape.begin(), X->NewShape.end()))};
    }

    case ExpKind::Concat: {
      const auto *X = expCast<ConcatExp>(&E);
      if (X->Arrays.empty())
        return err(Where, "concat of zero arrays");
      std::vector<Type> Ts;
      for (const VName &A : X->Arrays) {
        auto TA = arrayType(A, Where);
        if (!TA)
          return TA.getError();
        Ts.push_back(*TA);
      }
      int64_t OuterSum = 0;
      bool OuterKnown = true;
      for (const Type &T : Ts) {
        if (T.elemKind() != Ts[0].elemKind() || T.rank() != Ts[0].rank())
          return err(Where, "concat of arrays with mismatched types " +
                                Ts[0].str() + " and " + T.str());
        for (int I = 1; I < T.rank(); ++I)
          if (!dimsAgree(T.shape()[I], Ts[0].shape()[I]))
            return err(Where, "concat of arrays with mismatched inner "
                              "dimensions " +
                                  Ts[0].str() + " and " + T.str());
        if (T.outerDim().isConst())
          OuterSum += T.outerDim().getConst().asInt64();
        else
          OuterKnown = false;
      }
      std::vector<Dim> Shape = Ts[0].shape();
      Shape[0] = OuterKnown
                     ? SubExp::constant(PrimValue::makeI64(OuterSum))
                     : unknownDim();
      return std::vector<Type>{Type(Ts[0].elemKind(), std::move(Shape))};
    }

    case ExpKind::Copy: {
      auto TA = arrayType(expCast<CopyExp>(&E)->Arr, Where);
      if (!TA)
        return TA.getError();
      return std::vector<Type>{TA->asNonUnique()};
    }

    case ExpKind::Slice: {
      const auto *X = expCast<SliceExp>(&E);
      auto TA = arrayType(X->Arr, Where);
      if (!TA)
        return TA.getError();
      if (auto Err = wantIntScalar(X->Offset, "slice offset", Where))
        return Err;
      if (auto Err = wantIntScalar(X->Len, "slice length", Where))
        return Err;
      if (auto Err = wantIntScalar(X->Stride, "slice stride", Where))
        return Err;
      // Static bounds: the last touched row must exist.
      if (X->Offset.isConst() && X->Len.isConst() && X->Stride.isConst() &&
          TA->outerDim().isConst()) {
        int64_t Off = X->Offset.getConst().asInt64();
        int64_t Len = X->Len.getConst().asInt64();
        int64_t Str = X->Stride.getConst().asInt64();
        int64_t N = TA->outerDim().getConst().asInt64();
        int64_t Last = Off + (Len > 0 ? (Len - 1) * Str : 0);
        if (Len < 0 || Off < 0 || (Len > 0 && (Last < 0 || Last >= N)))
          return err(Where, "slice [" + std::to_string(Off) + "; " +
                                std::to_string(Len) + "; stride " +
                                std::to_string(Str) +
                                "] out of bounds for outer dimension " +
                                std::to_string(N));
      }
      std::vector<Dim> Shape = TA->shape();
      Shape[0] = X->Len;
      return std::vector<Type>{Type(TA->elemKind(), std::move(Shape))};
    }

    case ExpKind::Map: {
      const auto *X = expCast<MapExp>(&E);
      if (auto Err = wantIntScalar(X->Width, "map width", Where))
        return Err;
      std::vector<Type> RowTys;
      for (const VName &A : X->Arrays) {
        auto TA = arrayType(A, Where);
        if (!TA)
          return TA.getError();
        if (!dimsAgree(TA->outerDim(), X->Width))
          return err(Where, "map of width " + X->Width.str() +
                                " over " + A.str() + " of outer size " +
                                TA->outerDim().str());
        RowTys.push_back(TA->rowType());
      }
      if (auto Err = checkLambda(X->Fn, &RowTys, Where + " (map fn)"))
        return Err;
      std::vector<Type> Out;
      for (const Type &T : X->Fn.RetTypes)
        Out.push_back(T.asNonUnique().arrayOf(X->Width));
      return Out;
    }

    case ExpKind::Reduce:
    case ExpKind::Scan: {
      bool IsScan = E.kind() == ExpKind::Scan;
      const SubExp &Width = IsScan ? expCast<ScanExp>(&E)->Width
                                   : expCast<ReduceExp>(&E)->Width;
      const Lambda &Fn =
          IsScan ? expCast<ScanExp>(&E)->Fn : expCast<ReduceExp>(&E)->Fn;
      const std::vector<SubExp> &Neutral = IsScan
                                               ? expCast<ScanExp>(&E)->Neutral
                                               : expCast<ReduceExp>(&E)->Neutral;
      const std::vector<VName> &Arrays = IsScan
                                             ? expCast<ScanExp>(&E)->Arrays
                                             : expCast<ReduceExp>(&E)->Arrays;
      const char *What = IsScan ? "scan" : "reduce";
      if (auto Err = wantIntScalar(Width, std::string(What) + " width",
                                   Where))
        return Err;
      if (Neutral.size() != Arrays.size())
        return err(Where, std::string(What) + " with " +
                              std::to_string(Neutral.size()) +
                              " neutral elements over " +
                              std::to_string(Arrays.size()) + " arrays");
      std::vector<Type> ElemTys;
      for (const VName &A : Arrays) {
        auto TA = arrayType(A, Where);
        if (!TA)
          return TA.getError();
        if (!dimsAgree(TA->outerDim(), Width))
          return err(Where, std::string(What) + " of width " + Width.str() +
                                " over " + A.str() + " of outer size " +
                                TA->outerDim().str());
        ElemTys.push_back(TA->rowType());
      }
      for (size_t I = 0; I < Neutral.size(); ++I) {
        auto TN = typeOfSub(Neutral[I], Where);
        if (!TN)
          return TN.getError();
        if (!typesAgree(TN->asNonUnique(), ElemTys[I].asNonUnique()))
          return err(Where, std::string(What) + " neutral element " +
                                std::to_string(I) + " has type " +
                                TN->str() + " but the elements have type " +
                                ElemTys[I].str());
      }
      // Operator: (acc..., elem...) -> acc..., all of the element types.
      std::vector<Type> OpArgs = ElemTys;
      OpArgs.insert(OpArgs.end(), ElemTys.begin(), ElemTys.end());
      if (auto Err = checkLambda(Fn, &OpArgs,
                                 Where + (IsScan ? " (scan op)"
                                                 : " (reduce op)")))
        return Err;
      if (!allAgree(Fn.RetTypes, ElemTys))
        return err(Where, std::string(What) + " operator returns " +
                              typeListStr(Fn.RetTypes) +
                              " but the elements have types " +
                              typeListStr(ElemTys));
      std::vector<Type> Out;
      for (const Type &T : ElemTys)
        Out.push_back(IsScan ? T.arrayOf(Width) : T);
      return Out;
    }

    case ExpKind::Stream: {
      const auto *X = expCast<StreamExp>(&E);
      if (auto Err = wantIntScalar(X->Width, "stream width", Where))
        return Err;
      if (static_cast<int>(X->AccInit.size()) != X->NumAccs)
        return err(Where, "stream with " +
                              std::to_string(X->AccInit.size()) +
                              " initial accumulators but NumAccs = " +
                              std::to_string(X->NumAccs));
      std::vector<Type> AccTys;
      for (const SubExp &A : X->AccInit) {
        auto TA = typeOfSub(A, Where);
        if (!TA)
          return TA.getError();
        AccTys.push_back(TA->asNonUnique());
      }
      std::vector<Type> InTys;
      for (const VName &A : X->Arrays) {
        auto TA = arrayType(A, Where);
        if (!TA)
          return TA.getError();
        if (!dimsAgree(TA->outerDim(), X->Width))
          return err(Where, "stream of width " + X->Width.str() + " over " +
                                A.str() + " of outer size " +
                                TA->outerDim().str());
        InTys.push_back(*TA);
      }
      // Fold convention: chunk size, accumulators, chunk arrays (whose
      // outer dimension is the chunk size, unknowable here).
      if (X->FoldFn.Params.size() != 1 + AccTys.size() + InTys.size())
        return err(Where, "stream fold takes " +
                              std::to_string(X->FoldFn.Params.size()) +
                              " parameters; expected " +
                              std::to_string(1 + AccTys.size() +
                                             InTys.size()));
      std::vector<Type> FoldArgs;
      {
        const Type &ChunkTy = X->FoldFn.Params[0].Ty;
        if (!ChunkTy.isScalar() || !isIntKind(ChunkTy.elemKind()))
          return err(Where, "stream fold's first parameter has type " +
                                ChunkTy.str() +
                                "; expected the integer chunk size");
        FoldArgs.push_back(ChunkTy);
      }
      FoldArgs.insert(FoldArgs.end(), AccTys.begin(), AccTys.end());
      for (const Type &T : InTys) {
        std::vector<Dim> Shape = T.shape();
        Shape[0] = unknownDim();
        FoldArgs.push_back(Type(T.elemKind(), std::move(Shape)));
      }
      if (auto Err = checkLambda(X->FoldFn, &FoldArgs,
                                 Where + " (stream fold)"))
        return Err;
      if (static_cast<int>(X->FoldFn.RetTypes.size()) < X->NumAccs)
        return err(Where, "stream fold returns " +
                              std::to_string(X->FoldFn.RetTypes.size()) +
                              " values; expected at least NumAccs = " +
                              std::to_string(X->NumAccs));
      for (int I = 0; I < X->NumAccs; ++I)
        if (!typesAgree(X->FoldFn.RetTypes[I].asNonUnique(), AccTys[I]))
          return err(Where, "stream fold accumulator result " +
                                std::to_string(I) + " has type " +
                                X->FoldFn.RetTypes[I].str() +
                                " but the accumulator has type " +
                                AccTys[I].str());
      if (X->Form == StreamExp::FormKind::Red) {
        std::vector<Type> RedArgs = AccTys;
        RedArgs.insert(RedArgs.end(), AccTys.begin(), AccTys.end());
        if (auto Err = checkLambda(X->ReduceFn, &RedArgs,
                                   Where + " (stream_red op)"))
          return Err;
        if (!allAgree(X->ReduceFn.RetTypes, AccTys))
          return err(Where, "stream_red operator returns " +
                                typeListStr(X->ReduceFn.RetTypes) +
                                " but the accumulators have types " +
                                typeListStr(AccTys));
      }
      std::vector<Type> Out = AccTys;
      for (size_t I = X->NumAccs; I < X->FoldFn.RetTypes.size(); ++I) {
        const Type &T = X->FoldFn.RetTypes[I];
        if (!T.isArray())
          return err(Where, "stream fold's mapped result " +
                                std::to_string(I) + " has scalar type " +
                                T.str() +
                                "; per-chunk results must be arrays");
        std::vector<Dim> Shape = T.shape();
        Shape[0] = X->Width;
        Out.push_back(Type(T.elemKind(), std::move(Shape)));
      }
      return Out;
    }

    case ExpKind::ReduceByIndex: {
      const auto *X = expCast<ReduceByIndexExp>(&E);
      if (auto Err = wantIntScalar(X->Width, "reduce_by_index width", Where))
        return Err;
      auto TD = arrayType(X->Dest, Where + " (hist dest)");
      if (!TD)
        return TD.getError();
      if (TD->rank() != 1)
        return err(Where, "reduce_by_index destination " + X->Dest.str() +
                              " has rank " + std::to_string(TD->rank()) +
                              "; expected 1");
      if (!dimsAgree(TD->outerDim(), X->Width))
        return err(Where, "reduce_by_index of width " + X->Width.str() +
                              " into destination of outer size " +
                              TD->outerDim().str());
      Type Elem = TD->rowType().asNonUnique();
      auto TI = arrayType(X->IndexArr, Where + " (hist indices)");
      if (!TI)
        return TI.getError();
      if (TI->rank() != 1 || !isIntKind(TI->elemKind()))
        return err(Where, "reduce_by_index index array " + X->IndexArr.str() +
                              " has type " + TI->str() +
                              "; expected a one-dimensional integer array");
      std::vector<Type> RowTys;
      for (const VName &A : X->ValueArrs) {
        auto TA = arrayType(A, Where + " (hist values)");
        if (!TA)
          return TA.getError();
        if (!dimsAgree(TA->outerDim(), TI->outerDim()))
          return err(Where, "reduce_by_index value array " + A.str() +
                                " of outer size " + TA->outerDim().str() +
                                " does not match the index array's outer "
                                "size " +
                                TI->outerDim().str());
        RowTys.push_back(TA->rowType());
      }
      auto TN = typeOfSub(X->Neutral, Where);
      if (!TN)
        return TN.getError();
      if (!typesAgree(TN->asNonUnique(), Elem))
        return err(Where, "reduce_by_index neutral element has type " +
                              TN->str() + " but the bins have type " +
                              Elem.str());
      if (auto Err = checkLambda(X->ValueFn, &RowTys,
                                 Where + " (hist value fn)"))
        return Err;
      if (X->ValueFn.RetTypes.size() != 1 ||
          !typesAgree(X->ValueFn.RetTypes[0].asNonUnique(), Elem))
        return err(Where, "reduce_by_index value function produces " +
                              typeListStr(X->ValueFn.RetTypes) +
                              " but the bins have type " + Elem.str());
      std::vector<Type> OpArgs{Elem, Elem};
      if (auto Err = checkLambda(X->CombineFn, &OpArgs,
                                 Where + " (hist op)"))
        return Err;
      if (X->CombineFn.RetTypes.size() != 1 ||
          !typesAgree(X->CombineFn.RetTypes[0].asNonUnique(), Elem))
        return err(Where, "reduce_by_index operator returns " +
                              typeListStr(X->CombineFn.RetTypes) +
                              " but the bins have type " + Elem.str());
      return std::vector<Type>{TD->asNonUnique()};
    }

    case ExpKind::Kernel:
      return checkKernel(*expCast<KernelExp>(&E), Where);
    }
    return err(Where, "unhandled expression kind");
  }

  ErrorOr<std::vector<Type>> checkKernel(const KernelExp &K,
                                         const std::string &Where) {
    if (KernelDepth > 0)
      return err(Where, "kernel nested inside another kernel's thread body");
    if (K.ThreadIndices.size() != K.GridDims.size())
      return err(Where, "kernel with " +
                            std::to_string(K.ThreadIndices.size()) +
                            " thread indices over a grid of rank " +
                            std::to_string(K.GridDims.size()));
    for (const SubExp &D : K.GridDims)
      if (auto Err = wantIntScalar(D, "kernel grid dimension", Where))
        return Err;

    // Inputs: the declared type must agree with the bound array (the
    // simulator charges tiled traffic by the element width of exactly
    // these arrays), and the layout permutation must be valid.
    for (const KernelExp::KInput &In : K.Inputs) {
      auto TA = arrayType(In.Arr, Where + " (kernel input)");
      if (!TA)
        return TA.getError();
      if (!typesAgree(In.Ty.asNonUnique(), TA->asNonUnique()))
        return err(Where, "kernel input " + In.Arr.str() +
                              " declares type " + In.Ty.str() +
                              " but the bound array has type " + TA->str());
      if (static_cast<int>(In.LayoutPerm.size()) != TA->rank())
        return err(Where, "kernel input " + In.Arr.str() +
                              " has a layout permutation of size " +
                              std::to_string(In.LayoutPerm.size()) +
                              " for rank " + std::to_string(TA->rank()));
      std::vector<bool> Seen(In.LayoutPerm.size(), false);
      for (int P : In.LayoutPerm) {
        if (P < 0 || P >= static_cast<int>(In.LayoutPerm.size()) || Seen[P])
          return err(Where, "kernel input " + In.Arr.str() +
                                " has an invalid layout permutation");
        Seen[P] = true;
      }
    }

    NameMap<Type> Saved = Scope;
    for (const VName &T : K.ThreadIndices)
      if (auto Err = bind(Param(T, Type::scalar(ScalarKind::I32)), Where))
        return Err;
    if (K.isSegmented()) {
      if (auto Err = wantIntScalar(K.SegSize, "segment size", Where))
        return Err;
      if (auto Err = bind(Param(K.SegIndex, Type::scalar(ScalarKind::I32)),
                          Where))
        return Err;
    }

    ++KernelDepth;
    auto TR = checkBody(K.ThreadBody, Where + " (thread body)");
    --KernelDepth;
    if (!TR)
      return TR.getError();
    Scope = std::move(Saved);

    if (K.Op == KernelExp::OpKind::SegHist) {
      if (TR->size() != 2)
        return err(Where, "seghist kernel thread body produces " +
                              std::to_string(TR->size()) +
                              " values; expected (bin index, value)");
      Type BinTy = (*TR)[0];
      if (!BinTy.isScalar() || !isIntKind(BinTy.elemKind()))
        return err(Where, "seghist kernel bin index has type " +
                              BinTy.str() + "; expected an integer scalar");
      Type Elem = (*TR)[1].asNonUnique();
      if (K.Neutral.size() != 1)
        return err(Where, "seghist kernel must have exactly one neutral "
                          "element");
      auto TN = typeOfSub(K.Neutral[0], Where);
      if (!TN)
        return TN.getError();
      if (!typesAgree(TN->asNonUnique(), Elem))
        return err(Where, "seghist kernel neutral element has type " +
                              TN->str() + " but the values have type " +
                              Elem.str());
      std::vector<Type> OpArgs{Elem, Elem};
      if (auto Err = checkLambda(K.ReduceFn, &OpArgs, Where + " (kernel op)"))
        return Err;
      if (K.ReduceFn.RetTypes.size() != 1 ||
          !typesAgree(K.ReduceFn.RetTypes[0].asNonUnique(), Elem))
        return err(Where, "seghist kernel operator returns " +
                              typeListStr(K.ReduceFn.RetTypes) +
                              " but the values have type " + Elem.str());
      if (auto Err = wantIntScalar(K.HistWidth, "histogram width", Where))
        return Err;
      auto TD = arrayType(K.HistDest, Where + " (kernel hist dest)");
      if (!TD)
        return TD.getError();
      if (TD->rank() != 1 || TD->elemKind() != Elem.elemKind())
        return err(Where, "seghist kernel destination " + K.HistDest.str() +
                              " has type " + TD->str() +
                              " but the values have type " + Elem.str());
      if (!dimsAgree(TD->outerDim(), K.HistWidth))
        return err(Where, "seghist kernel of width " + K.HistWidth.str() +
                              " into destination of outer size " +
                              TD->outerDim().str());
      if (K.RetTypes.size() != 1 ||
          !typesAgree(K.RetTypes[0].asNonUnique(), TD->asNonUnique()))
        return err(Where, "seghist kernel declares result types " +
                              typeListStr(K.RetTypes) +
                              " but the destination has type " + TD->str());
      return std::vector<Type>{TD->asNonUnique()};
    }

    if (K.isSegmented()) {
      if (TR->size() != K.Neutral.size())
        return err(Where, "segmented kernel thread body produces " +
                              std::to_string(TR->size()) +
                              " element values for " +
                              std::to_string(K.Neutral.size()) +
                              " neutral elements");
      std::vector<Type> ElemTys;
      for (const Type &T : *TR)
        ElemTys.push_back(T.asNonUnique());
      for (size_t I = 0; I < K.Neutral.size(); ++I) {
        auto TN = typeOfSub(K.Neutral[I], Where);
        if (!TN)
          return TN.getError();
        if (!typesAgree(TN->asNonUnique(), ElemTys[I]))
          return err(Where, "segmented kernel neutral element " +
                                std::to_string(I) + " has type " +
                                TN->str() + " but the elements have type " +
                                ElemTys[I].str());
      }
      std::vector<Type> OpArgs = ElemTys;
      OpArgs.insert(OpArgs.end(), ElemTys.begin(), ElemTys.end());
      if (auto Err = checkLambda(K.ReduceFn, &OpArgs,
                                 Where + " (kernel op)"))
        return Err;
      if (!allAgree(K.ReduceFn.RetTypes, ElemTys))
        return err(Where, "segmented kernel operator returns " +
                              typeListStr(K.ReduceFn.RetTypes) +
                              " but the elements have types " +
                              typeListStr(ElemTys));
      if (K.RetTypes.size() != K.Neutral.size())
        return err(Where, "segmented kernel declares " +
                              std::to_string(K.RetTypes.size()) +
                              " result types for " +
                              std::to_string(K.Neutral.size()) +
                              " reduced values");
      bool IsScan = K.Op == KernelExp::OpKind::SegScan;
      std::vector<Type> Out;
      for (size_t I = 0; I < K.RetTypes.size(); ++I) {
        Type Elem = ElemTys[I];
        std::vector<Dim> Shape(K.GridDims.begin(), K.GridDims.end());
        if (IsScan)
          Shape.push_back(K.SegSize);
        Shape.insert(Shape.end(), Elem.shape().begin(), Elem.shape().end());
        Type Derived(Elem.elemKind(), std::move(Shape));
        if (!typesAgree(K.RetTypes[I].asNonUnique(), Derived))
          return err(Where, "segmented kernel result " + std::to_string(I) +
                                " declares type " + K.RetTypes[I].str() +
                                " but the grid and elements derive " +
                                Derived.str());
        Out.push_back(Derived);
      }
      return Out;
    }

    if (K.RetTypes.size() != TR->size())
      return err(Where, "kernel thread body produces " +
                            std::to_string(TR->size()) +
                            " values but the kernel declares " +
                            std::to_string(K.RetTypes.size()) +
                            " result types");
    std::vector<Type> Out;
    for (size_t I = 0; I < TR->size(); ++I) {
      const Type &Elem = (*TR)[I];
      std::vector<Dim> Shape(K.GridDims.begin(), K.GridDims.end());
      Shape.insert(Shape.end(), Elem.shape().begin(), Elem.shape().end());
      Type Derived(Elem.elemKind(), std::move(Shape));
      if (!typesAgree(K.RetTypes[I].asNonUnique(), Derived))
        return err(Where, "kernel result " + std::to_string(I) +
                              " declares type " + K.RetTypes[I].str() +
                              " but the grid and thread results derive " +
                              Derived.str());
      Out.push_back(Derived);
    }
    return Out;
  }

  //===-- Bodies ----------------------------------------------------------===//

  ErrorOr<std::vector<Type>> checkBody(const Body &B,
                                       const std::string &Where) {
    NameSet Consumed;
    auto consumedUse = [&](const Exp &E, VName &Hit) {
      if (Consumed.empty())
        return false;
      for (const VName &V : freeVarsInExp(E))
        if (Consumed.count(V)) {
          Hit = V;
          return true;
        }
      return false;
    };

    for (const Stm &S : B.Stms) {
      std::string Binding =
          S.Pat.empty() ? std::string("<empty pattern>")
                        : "binding '" + S.Pat[0].Name.str() + "'";
      if (Opts.CheckConsumption) {
        VName Hit;
        if (consumedUse(*S.E, Hit))
          return err(Binding, "use of " + Hit.str() +
                                  " after it was consumed by an in-place "
                                  "update");
      }
      auto Ts = checkExp(*S.E, Binding);
      if (!Ts)
        return Ts.getError();
      // Apply's return arity is derived from the callee, so every
      // expression's arity is decidable here, unlike in Check.h.
      if (Ts->size() != S.Pat.size())
        return err(Binding, std::string("pattern of arity ") +
                                std::to_string(S.Pat.size()) +
                                " bound to a " + expKindName(S.E->kind()) +
                                " producing " + std::to_string(Ts->size()) +
                                " values");
      for (size_t I = 0; I < S.Pat.size(); ++I) {
        if (!typesAgree((*Ts)[I].asNonUnique(), S.Pat[I].Ty.asNonUnique()))
          return err(Binding, "declares type " + S.Pat[I].Ty.str() +
                                  " for " + S.Pat[I].Name.str() +
                                  " but the expression derives " +
                                  (*Ts)[I].str());
        if (auto Err = bind(S.Pat[I], Binding))
          return Err;
      }
      if (Opts.CheckConsumption) {
        if (const auto *U = expDynCast<UpdateExp>(S.E.get()))
          Consumed.insert(U->Arr);
        if (const auto *R = expDynCast<ReduceByIndexExp>(S.E.get()))
          Consumed.insert(R->Dest);
        if (const auto *K = expDynCast<KernelExp>(S.E.get()))
          if (K->Op == KernelExp::OpKind::SegHist)
            Consumed.insert(K->HistDest);
      }
    }

    std::vector<Type> Out;
    for (const SubExp &R : B.Result) {
      if (Opts.CheckConsumption && R.isVar() && Consumed.count(R.getVar()))
        return err(Where, "result returns " + R.getVar().str() +
                              " after it was consumed by an in-place "
                              "update");
      auto T = typeOfSub(R, Where);
      if (!T)
        return T.getError();
      Out.push_back(T->asNonUnique());
    }
    return Out;
  }
};

} // namespace

MaybeError fut::verifyFun(const Program &P, const FunDef &F,
                          const std::string &Pass,
                          const VerifyOptions &Opts) {
  return Verifier(P, Opts, Pass).verifyFunDef(F);
}

MaybeError fut::verifyProgram(const Program &P, const std::string &Pass,
                              const VerifyOptions &Opts) {
  for (const FunDef &F : P.Funs)
    if (auto Err = verifyFun(P, F, Pass, Opts))
      return Err;
  return MaybeError::success();
}
