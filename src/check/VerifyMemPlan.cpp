//===- VerifyMemPlan.cpp - Memory-plan soundness checker ------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "check/Verify.h"

#include "ir/Traversal.h"
#include "mem/MemPlan.h"

#include <cstdint>
#include <string>
#include <vector>

using namespace fut;

namespace {

/// Kernel output pattern names of \p B, recursively through loop and
/// branch bodies (kernel thread bodies are leaves).  These are exactly
/// the names the simulator binds to device storage, so each must have a
/// slab assignment.
void collectKernelOutputs(const Body &B, std::vector<VName> &Out) {
  for (const Stm &S : B.Stms) {
    if (expDynCast<KernelExp>(S.E.get())) {
      for (const Param &Prm : S.Pat)
        if (Prm.Ty.isArray())
          Out.push_back(Prm.Name);
      continue;
    }
    forEachChildBody(*S.E,
                     [&](const Body &Inner) { collectKernelOutputs(Inner, Out); });
  }
}

/// Union-find over re-derived alias classes (names are roots of
/// themselves until united).
struct AliasClasses {
  NameMap<VName> Parent;

  VName find(VName N) {
    std::vector<VName> Path;
    for (;;) {
      auto It = Parent.find(N);
      if (It == Parent.end() || It->second == N)
        break;
      Path.push_back(N);
      N = It->second;
    }
    for (const VName &P : Path)
      Parent[P] = N;
    return N;
  }

  void unite(const VName &A, const VName &B) {
    VName RA = find(A), RB = find(B);
    if (!(RA == RB))
      Parent[RA] = RB;
  }
};

/// Whether two entries of the same slab can occupy overlapping bytes: a
/// hoisted slab separates its tenants by double-buffer half; a flat slab
/// by [Offset, Offset+Bytes) ranges, where a symbolic size (-1) extends
/// to the end of the slab.
bool bytesOverlap(const mem::SlabInfo &Slab, const mem::PlanEntry &A,
                  const mem::PlanEntry &B) {
  if (Slab.Hoisted)
    return A.BufferIndex == B.BufferIndex;
  int64_t AEnd = A.Bytes < 0 ? INT64_MAX : A.Offset + A.Bytes;
  int64_t BEnd = B.Bytes < 0 ? INT64_MAX : B.Offset + B.Bytes;
  return A.Offset < BEnd && B.Offset < AEnd;
}

MaybeError verifyFunPlan(const Program &P, const mem::FunPlan &FP,
                         const std::string &Pass) {
  auto Fail = [&](const std::string &Msg) {
    return CompilerError(ErrorKind::Verify, "after pass '" + Pass +
                                                "': in function '" + FP.Fun +
                                                "': " + Msg);
  };

  const FunDef *F = P.findFun(FP.Fun);
  if (!F)
    return Fail("memory plan names a function the program does not define");

  // Independently re-derive what the planner should have seen.
  mem::FunMemAnalysis A = mem::analyseFun(*F);
  AliasClasses AC;
  for (const mem::AliasEdge &E : A.Aliases)
    if (A.Intervals.lookup(E.Dst) && A.Intervals.lookup(E.Src))
      AC.unite(E.Dst, E.Src);

  // Completeness: every kernel output is placed.
  std::vector<VName> Outputs;
  collectKernelOutputs(F->FBody, Outputs);
  for (const VName &N : Outputs)
    if (!FP.lookup(N))
      return Fail("kernel output '" + N.str() +
                  "' has no slab assignment in the memory plan");

  for (const mem::PlanEntry &E : FP.Entries) {
    if (E.Slab < 0 || E.Slab >= static_cast<int>(FP.Slabs.size()))
      return Fail("entry '" + E.Name.str() + "' names slab " +
                  std::to_string(E.Slab) + " which does not exist");
    if (!A.Intervals.lookup(E.Name))
      return Fail("entry '" + E.Name.str() +
                  "' is not an array binding of the function");
    if (E.HasAlias) {
      bool Real = false;
      for (const mem::AliasEdge &AE : A.Aliases)
        if (AE.Dst == E.Name && AE.Src == E.AliasOf) {
          Real = true;
          break;
        }
      if (!Real)
        return Fail("entry '" + E.Name.str() + "' claims to alias '" +
                    E.AliasOf.str() +
                    "' but no let/consume/loop edge justifies it");
      if (const mem::PlanEntry *Src = FP.lookup(E.AliasOf))
        if (Src->Slab != E.Slab)
          return Fail("entry '" + E.Name.str() + "' aliases '" +
                      E.AliasOf.str() + "' but is placed in slab " +
                      std::to_string(E.Slab) + " while its source is in slab " +
                      std::to_string(Src->Slab));
    }
  }

  // Overlap: two simultaneously-live, non-aliased arrays must not share
  // bytes of a slab.
  for (size_t I = 0; I < FP.Entries.size(); ++I) {
    const mem::PlanEntry &EA = FP.Entries[I];
    const mem::LiveInterval *IA = A.Intervals.lookup(EA.Name);
    for (size_t J = I + 1; J < FP.Entries.size(); ++J) {
      const mem::PlanEntry &EB = FP.Entries[J];
      if (EA.Slab != EB.Slab)
        continue;
      const mem::LiveInterval *IB = A.Intervals.lookup(EB.Name);
      if (!IA || !IB || !mem::interfere(*IA, *IB))
        continue;
      if (!bytesOverlap(FP.Slabs[EA.Slab], EA, EB))
        continue;
      if (AC.find(EA.Name) == AC.find(EB.Name))
        continue; // Proven to share storage legitimately.
      return Fail("arrays '" + EA.Name.str() + "' (live [" +
                  std::to_string(IA->Start) + "," + std::to_string(IA->End) +
                  "]) and '" + EB.Name.str() + "' (live [" +
                  std::to_string(IB->Start) + "," + std::to_string(IB->End) +
                  "]) are simultaneously live but overlap in slab " +
                  std::to_string(EA.Slab));
    }
  }

  return MaybeError::success();
}

} // namespace

MaybeError fut::verifyMemoryPlan(const Program &P, const mem::MemoryPlan &MP,
                                 const std::string &Pass) {
  for (const mem::FunPlan &FP : MP.Funs)
    if (auto Err = verifyFunPlan(P, FP, Pass))
      return Err;
  return MaybeError::success();
}
