//===- VerifyShardPlan.cpp - Shard-plan soundness checker -----------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-derives the multi-device shard decomposition independently of the
/// planner, mirroring VerifyMemPlan: every sharded kernel must actually be
/// shardable, its recorded blocks must partition the outer dimension with
/// every row owned by exactly one device, every transfer the decomposition
/// requires must be present in the plan, and the re-derived per-device
/// peak must fit each device's budget.  Marking a shardable kernel whole,
/// or recording extra transfers, is conservative and allowed.
///
//===----------------------------------------------------------------------===//

#include "check/Verify.h"

#include "shard/ShardPlan.h"

#include <string>
#include <vector>

using namespace fut;

namespace {

MaybeError verifyFunShards(const Program &P, const shard::FunShardPlan &FP,
                           int Devices, const std::string &Pass) {
  auto Fail = [&](const std::string &Msg) {
    return CompilerError(ErrorKind::Verify, "after pass '" + Pass +
                                                "': in function '" + FP.Fun +
                                                "': " + Msg);
  };

  const FunDef *F = P.findFun(FP.Fun);
  if (!F)
    return Fail("shard plan names a function the program does not define");

  // Kernel-by-kernel: the plan's sharding decisions must be justified by
  // an independent re-derivation.
  int Seen = 0;
  MaybeError Err = MaybeError::success();
  shard::forEachKernel(*F, [&](const KernelExp &K, const Stm &S, int Id,
                               bool Top) {
    ++Seen;
    if (Err)
      return;
    const shard::KernelShard *KS = FP.kernel(Id);
    if (!KS) {
      Err = Fail("kernel " + std::to_string(Id) +
                 " has no entry in the shard plan");
      return;
    }
    shard::KernelShardability A = shard::analyseShardability(K, S, Top);
    if (!KS->Sharded)
      return; // Running a kernel whole is always sound.
    if (!A.Sharded) {
      Err = Fail("kernel " + std::to_string(Id) +
                 " is marked sharded but cannot be partitioned (" +
                 A.WhyNot + ")");
      return;
    }
    if (!(KS->Width == A.Width)) {
      Err = Fail("kernel " + std::to_string(Id) + " shards width '" +
                 KS->Width.str() + "' but its outer grid dimension is '" +
                 A.Width.str() + "'");
      return;
    }
    // Histogram partials must be merged, never concatenated: a plan that
    // drops (or invents) the merge marking would mis-account residency
    // and transfers for the replicated full-width partials.
    if (KS->HistMerge != A.HistMerge) {
      Err = Fail("kernel " + std::to_string(Id) +
                 (A.HistMerge
                      ? " is a histogram but not marked for partial-merge"
                      : " is marked for partial-merge but is not a "
                        "histogram"));
      return;
    }
    for (const shard::ShardInput &SI : KS->Inputs) {
      if (SI.Class != shard::InputClass::Aligned)
        continue;
      bool Justified = false;
      for (const shard::ShardInput &AI : A.Inputs)
        if (AI.Arr == SI.Arr && AI.Class == shard::InputClass::Aligned)
          Justified = true;
      if (!Justified) {
        Err = Fail("kernel " + std::to_string(Id) + " input '" +
                   SI.Arr.str() +
                   "' is classified aligned but its uses require the "
                   "whole array on every device");
        return;
      }
    }
    // Ownership: for constant widths the recorded blocks must partition
    // [0, W) exactly — no row on two devices, no row on none.
    if (KS->ConstWidth >= 0) {
      if (static_cast<int>(KS->Blocks.size()) != Devices) {
        Err = Fail("kernel " + std::to_string(Id) + " records " +
                   std::to_string(KS->Blocks.size()) + " blocks for " +
                   std::to_string(Devices) + " devices");
        return;
      }
      int64_t Expect = 0;
      for (size_t D = 0; D < KS->Blocks.size(); ++D) {
        int64_t Start = KS->Blocks[D].first, End = KS->Blocks[D].second;
        if (Start > End) {
          Err = Fail("kernel " + std::to_string(Id) + " device " +
                     std::to_string(D) + " owns an inverted row range [" +
                     std::to_string(Start) + "," + std::to_string(End) +
                     ")");
          return;
        }
        if (Start < Expect) {
          Err = Fail("kernel " + std::to_string(Id) + " rows [" +
                     std::to_string(Start) + "," +
                     std::to_string(Expect) +
                     ") are owned by more than one device");
          return;
        }
        if (Start > Expect) {
          Err = Fail("kernel " + std::to_string(Id) + " rows [" +
                     std::to_string(Expect) + "," +
                     std::to_string(Start) + ") are owned by no device");
          return;
        }
        Expect = End;
      }
      if (Expect != KS->ConstWidth) {
        Err = Fail("kernel " + std::to_string(Id) + " blocks cover [0," +
                   std::to_string(Expect) + ") but the outer dimension is " +
                   std::to_string(KS->ConstWidth));
        return;
      }
    }
  });
  if (Err)
    return Err;
  if (Seen != static_cast<int>(FP.Kernels.size()))
    return Fail("shard plan records " + std::to_string(FP.Kernels.size()) +
                " kernels but the function has " + std::to_string(Seen));

  // Transfers: everything the plan's own sharding decisions require must
  // be present (extra transfers are conservative and allowed).
  std::vector<shard::TransferEdge> Required =
      shard::deriveTransfers(*F, FP.Kernels);
  for (const shard::TransferEdge &R : Required) {
    bool Present = false;
    for (const shard::TransferEdge &E : FP.Transfers)
      if (E.Arr == R.Arr && E.ProducerKernel == R.ProducerKernel &&
          E.ConsumerKernel == R.ConsumerKernel)
        Present = true;
    if (!Present)
      return Fail(
          "missing inter-device transfer for '" + R.Arr.str() +
          "' (produced partitioned by kernel " +
          std::to_string(R.ProducerKernel) + ", consumed whole by " +
          (R.ConsumerKernel < 0 ? std::string("the host")
                                : "kernel " +
                                      std::to_string(R.ConsumerKernel)) +
          ")");
  }

  // Budget: the independently re-derived per-device peak must fit.
  if (FP.PerDeviceMemBytes > 0) {
    std::vector<int64_t> Peaks =
        shard::derivePeakBytes(*F, FP.Kernels, Required, Devices);
    for (size_t D = 0; D < Peaks.size(); ++D)
      if (Peaks[D] > FP.PerDeviceMemBytes)
        return Fail("shard for device " + std::to_string(D) + " needs " +
                    std::to_string(Peaks[D]) +
                    " bytes, over the per-device budget of " +
                    std::to_string(FP.PerDeviceMemBytes));
  }

  return MaybeError::success();
}

} // namespace

MaybeError fut::verifyShardPlan(const Program &P, const shard::ShardPlan &SP,
                                const std::string &Pass) {
  for (const shard::FunShardPlan &FP : SP.Funs)
    if (auto Err = verifyFunShards(P, FP, SP.Devices, Pass))
      return Err;
  return MaybeError::success();
}
