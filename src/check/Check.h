//===- Check.h - Internal IR consistency checking ---------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structural validity checker for the core IR, run between compiler
/// phases (the "Typechecking" box of Fig 3, re-checked after every
/// transformation in tests).  Verifies:
///
///   * scoping: every variable use is dominated by its binding,
///   * unique binding tags: no name is bound twice in one function,
///   * pattern arities: each binding's pattern matches the number of
///     values its expression produces,
///   * lambda shapes: SOAC function arity matches the operand arrays
///     (with the stream fold convention of a leading chunk-size param),
///   * scalar/array kind sanity on operands where locally decidable,
///   * kernel invariants: thread indices match grid dims, segmented
///     kernels carry an operator of matching arity.
///
/// The checker is deliberately independent from the frontend's type
/// inference: it re-derives what it can from binding annotations, so that
/// a buggy pass cannot silently smuggle ill-formed code to the simulator.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_CHECK_CHECK_H
#define FUTHARKCC_CHECK_CHECK_H

#include "ir/IR.h"
#include "support/Error.h"

namespace fut {

/// Checks the whole program; returns the first violation found.
MaybeError checkProgram(const Program &P);

/// Checks one function.
MaybeError checkFun(const FunDef &F);

} // namespace fut

#endif // FUTHARKCC_CHECK_CHECK_H
