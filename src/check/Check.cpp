//===- Check.cpp - Internal IR consistency checking ----------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "check/Check.h"

#include "ir/Traversal.h"

using namespace fut;

namespace {

class Checker {
  /// Types of names in scope.  With globally unique tags a flat map
  /// suffices; scoping is enforced by checking *dominance* (a use must
  /// have been bound before, in traversal order).
  NameMap<Type> Scope;
  NameSet EverBound;

public:
  MaybeError checkFunDef(const FunDef &F) {
    Scope.clear();
    EverBound.clear();
    for (const Param &P : F.Params)
      if (auto Err = bind(P, "parameter of " + F.Name))
        return Err;
    if (auto Err = checkBody(F.FBody, F.Name))
      return Err;
    if (F.FBody.Result.size() != F.RetTypes.size())
      return CompilerError("function " + F.Name + " returns " +
                           std::to_string(F.FBody.Result.size()) +
                           " values but declares " +
                           std::to_string(F.RetTypes.size()));
    return MaybeError::success();
  }

private:
  MaybeError bind(const Param &P, const std::string &Where) {
    if (EverBound.count(P.Name))
      return CompilerError("name " + P.Name.str() + " bound twice (" +
                           Where + ")");
    EverBound.insert(P.Name);
    Scope[P.Name] = P.Ty;
    // Dimension variables must themselves be in scope or freshly implied.
    for (const Dim &D : P.Ty.shape())
      if (D.isVar() && !Scope.count(D.getVar())) {
        // Sizes are bound dynamically when unseen (existential sizes);
        // register them so later uses are legal.
        Scope[D.getVar()] = Type::scalar(ScalarKind::I32);
        EverBound.insert(D.getVar());
      }
    return MaybeError::success();
  }

  MaybeError use(const VName &V, const std::string &Where) {
    if (!Scope.count(V))
      return CompilerError("use of unbound variable " + V.str() + " in " +
                           Where);
    return MaybeError::success();
  }

  MaybeError useSub(const SubExp &S, const std::string &Where) {
    if (S.isVar())
      return use(S.getVar(), Where);
    return MaybeError::success();
  }

  MaybeError useArray(const VName &V, const std::string &Where) {
    if (auto Err = use(V, Where))
      return Err;
    // use() above guarantees presence; .at() keeps this a checked lookup
    // instead of an operator[] that would default-construct a bogus type.
    if (!Scope.at(V).isArray())
      return CompilerError("variable " + V.str() + " used as an array in " +
                           Where + " but has scalar type " +
                           Scope.at(V).str());
    return MaybeError::success();
  }

  /// The number of values \p E produces, or -1 when not locally decidable.
  int arityOf(const Exp &E) const {
    switch (E.kind()) {
    case ExpKind::If:
      return static_cast<int>(expCast<IfExp>(&E)->RetTypes.size());
    case ExpKind::Loop:
      return static_cast<int>(expCast<LoopExp>(&E)->MergeParams.size());
    case ExpKind::Map:
      return static_cast<int>(expCast<MapExp>(&E)->Fn.RetTypes.size());
    case ExpKind::Reduce:
      return static_cast<int>(expCast<ReduceExp>(&E)->Neutral.size());
    case ExpKind::Scan:
      return static_cast<int>(expCast<ScanExp>(&E)->Neutral.size());
    case ExpKind::Stream:
      return static_cast<int>(
          expCast<StreamExp>(&E)->FoldFn.RetTypes.size());
    case ExpKind::Kernel: {
      const auto *K = expCast<KernelExp>(&E);
      if (K->Op == KernelExp::OpKind::SegHist)
        return 1;
      return static_cast<int>(K->isSegmented() ? K->Neutral.size()
                                               : K->RetTypes.size());
    }
    case ExpKind::Apply:
      return -1; // Needs the callee's signature; checked by the frontend.
    default:
      return 1;
    }
  }

  MaybeError checkLambda(const Lambda &L, size_t ExpectedParams,
                         const std::string &Where) {
    if (L.Params.size() != ExpectedParams)
      return CompilerError(Where + " has " +
                           std::to_string(L.Params.size()) +
                           " parameters; expected " +
                           std::to_string(ExpectedParams));
    NameMap<Type> Saved = Scope;
    for (const Param &P : L.Params)
      if (auto Err = bind(P, Where))
        return Err;
    if (auto Err = checkBody(L.B, Where))
      return Err;
    if (L.B.Result.size() != L.RetTypes.size())
      return CompilerError(Where + " returns " +
                           std::to_string(L.B.Result.size()) +
                           " values but declares " +
                           std::to_string(L.RetTypes.size()));
    Scope = std::move(Saved);
    return MaybeError::success();
  }

  MaybeError checkExp(const Exp &E, const std::string &Where) {
    // All free operands must be in scope.
    MaybeError OperandErr = MaybeError::success();
    forEachFreeOperand(E, [&](const SubExp &S) {
      if (!OperandErr)
        if (auto Err = useSub(S, Where))
          OperandErr = Err;
    });
    if (OperandErr)
      return OperandErr;

    switch (E.kind()) {
    case ExpKind::Index: {
      const auto *X = expCast<IndexExp>(&E);
      if (auto Err = useArray(X->Arr, Where))
        return Err;
      if (static_cast<int>(X->Indices.size()) > Scope.at(X->Arr).rank())
        return CompilerError("indexing " + X->Arr.str() + " of rank " +
                             std::to_string(Scope.at(X->Arr).rank()) +
                             " with " + std::to_string(X->Indices.size()) +
                             " indices in " + Where);
      return MaybeError::success();
    }

    case ExpKind::Update: {
      const auto *X = expCast<UpdateExp>(&E);
      return useArray(X->Arr, Where);
    }

    case ExpKind::Rearrange: {
      const auto *X = expCast<RearrangeExp>(&E);
      if (auto Err = useArray(X->Arr, Where))
        return Err;
      if (static_cast<int>(X->Perm.size()) != Scope.at(X->Arr).rank())
        return CompilerError("rearrange permutation rank mismatch on " +
                             X->Arr.str() + " in " + Where);
      std::vector<bool> Seen(X->Perm.size(), false);
      for (int P : X->Perm) {
        if (P < 0 || P >= static_cast<int>(X->Perm.size()) || Seen[P])
          return CompilerError("invalid permutation in " + Where);
        Seen[P] = true;
      }
      return MaybeError::success();
    }

    case ExpKind::If: {
      const auto *X = expCast<IfExp>(&E);
      NameMap<Type> Saved = Scope;
      if (auto Err = checkBody(X->Then, Where + " (then)"))
        return Err;
      Scope = Saved;
      if (auto Err = checkBody(X->Else, Where + " (else)"))
        return Err;
      Scope = std::move(Saved);
      if (X->Then.Result.size() != X->RetTypes.size() ||
          X->Else.Result.size() != X->RetTypes.size())
        return CompilerError("if branches disagree with the declared "
                             "result arity in " +
                             Where);
      return MaybeError::success();
    }

    case ExpKind::Loop: {
      const auto *X = expCast<LoopExp>(&E);
      if (X->MergeInit.size() != X->MergeParams.size())
        return CompilerError("loop merge arity mismatch in " + Where);
      NameMap<Type> Saved = Scope;
      if (auto Err = bind(Param(X->IndexVar,
                                Type::scalar(ScalarKind::I32)),
                          Where))
        return Err;
      for (const Param &P : X->MergeParams)
        if (auto Err = bind(P, Where))
          return Err;
      if (auto Err = checkBody(X->LoopBody, Where + " (loop)"))
        return Err;
      Scope = std::move(Saved);
      if (X->LoopBody.Result.size() != X->MergeParams.size())
        return CompilerError("loop body arity mismatch in " + Where);
      return MaybeError::success();
    }

    case ExpKind::Map: {
      const auto *X = expCast<MapExp>(&E);
      for (const VName &A : X->Arrays)
        if (auto Err = useArray(A, Where))
          return Err;
      return checkLambda(X->Fn, X->Arrays.size(), Where + " (map fn)");
    }

    case ExpKind::Reduce: {
      const auto *X = expCast<ReduceExp>(&E);
      for (const VName &A : X->Arrays)
        if (auto Err = useArray(A, Where))
          return Err;
      if (X->Neutral.size() != X->Arrays.size())
        return CompilerError("reduce neutral/array arity mismatch in " +
                             Where);
      return checkLambda(X->Fn, 2 * X->Neutral.size(),
                         Where + " (reduce op)");
    }

    case ExpKind::Scan: {
      const auto *X = expCast<ScanExp>(&E);
      for (const VName &A : X->Arrays)
        if (auto Err = useArray(A, Where))
          return Err;
      if (X->Neutral.size() != X->Arrays.size())
        return CompilerError("scan neutral/array arity mismatch in " +
                             Where);
      return checkLambda(X->Fn, 2 * X->Neutral.size(),
                         Where + " (scan op)");
    }

    case ExpKind::Stream: {
      const auto *X = expCast<StreamExp>(&E);
      for (const VName &A : X->Arrays)
        if (auto Err = useArray(A, Where))
          return Err;
      if (static_cast<int>(X->AccInit.size()) != X->NumAccs)
        return CompilerError("stream accumulator arity mismatch in " +
                             Where);
      // Fold convention: chunk size, accumulators, chunk arrays.
      size_t Expected = 1 + X->NumAccs + X->Arrays.size();
      if (auto Err = checkLambda(X->FoldFn, Expected,
                                 Where + " (stream fold)"))
        return Err;
      if (static_cast<int>(X->FoldFn.RetTypes.size()) < X->NumAccs)
        return CompilerError("stream fold returns fewer values than "
                             "accumulators in " +
                             Where);
      if (X->Form == StreamExp::FormKind::Red)
        return checkLambda(X->ReduceFn, 2 * X->NumAccs,
                           Where + " (stream_red op)");
      return MaybeError::success();
    }

    case ExpKind::ReduceByIndex: {
      const auto *X = expCast<ReduceByIndexExp>(&E);
      if (auto Err = useArray(X->Dest, Where + " (hist dest)"))
        return Err;
      if (auto Err = useArray(X->IndexArr, Where + " (hist indices)"))
        return Err;
      for (const VName &A : X->ValueArrs)
        if (auto Err = useArray(A, Where + " (hist values)"))
          return Err;
      if (auto Err = checkLambda(X->CombineFn, 2, Where + " (hist op)"))
        return Err;
      return checkLambda(X->ValueFn, X->ValueArrs.size(),
                         Where + " (hist value fn)");
    }

    case ExpKind::Kernel: {
      const auto *K = expCast<KernelExp>(&E);
      if (K->ThreadIndices.size() != K->GridDims.size())
        return CompilerError("kernel thread-index/grid mismatch in " +
                             Where);
      if (K->Op == KernelExp::OpKind::SegHist)
        if (auto Err = useArray(K->HistDest, Where + " (kernel hist dest)"))
          return Err;
      for (const KernelExp::KInput &In : K->Inputs) {
        if (auto Err = useArray(In.Arr, Where + " (kernel input)"))
          return Err;
        if (static_cast<int>(In.LayoutPerm.size()) != In.Ty.rank())
          return CompilerError("kernel input layout rank mismatch for " +
                               In.Arr.str() + " in " + Where);
      }
      NameMap<Type> Saved = Scope;
      for (const VName &T : K->ThreadIndices)
        if (auto Err = bind(Param(T, Type::scalar(ScalarKind::I32)),
                            Where))
          return Err;
      if (K->isSegmented())
        if (auto Err = bind(Param(K->SegIndex,
                                  Type::scalar(ScalarKind::I32)),
                            Where))
          return Err;
      if (K->usesReduceFn()) {
        if (auto Err = checkLambda(K->ReduceFn, 2 * K->Neutral.size(),
                                   Where + " (kernel op)"))
          return Err;
        // SegHist threads yield (bin index, value): one extra result in
        // front of the Neutral-arity value tuple.
        size_t ExpectedElems = K->Neutral.size() +
                               (K->Op == KernelExp::OpKind::SegHist ? 1 : 0);
        if (K->ThreadBody.Result.size() != ExpectedElems)
          return CompilerError("segmented kernel element arity "
                               "mismatch in " +
                               Where);
      }
      if (auto Err = checkBody(K->ThreadBody, Where + " (kernel)"))
        return Err;
      Scope = std::move(Saved);
      return MaybeError::success();
    }

    default:
      return MaybeError::success();
    }
  }

  MaybeError checkBody(const Body &B, const std::string &Where) {
    for (const Stm &S : B.Stms) {
      if (auto Err = checkExp(*S.E, Where))
        return Err;
      int Arity = arityOf(*S.E);
      if (Arity >= 0 && static_cast<int>(S.Pat.size()) != Arity)
        return CompilerError("pattern of arity " +
                             std::to_string(S.Pat.size()) +
                             " bound to a " + expKindName(S.E->kind()) +
                             " producing " + std::to_string(Arity) +
                             " values in " + Where);
      for (const Param &P : S.Pat)
        if (auto Err = bind(P, Where))
          return Err;
    }
    for (const SubExp &R : B.Result)
      if (auto Err = useSub(R, Where + " (result)"))
        return Err;
    return MaybeError::success();
  }
};

} // namespace

MaybeError fut::checkFun(const FunDef &F) {
  return Checker().checkFunDef(F);
}

MaybeError fut::checkProgram(const Program &P) {
  for (const FunDef &F : P.Funs)
    if (auto Err = checkFun(F))
      return CompilerError("in function " + F.Name + ": " +
                           Err.getError().Message);
  return MaybeError::success();
}
