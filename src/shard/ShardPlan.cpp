//===- ShardPlan.cpp - Multi-device kernel sharding -----------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardPlan.h"

#include "ir/Traversal.h"
#include "mem/MemPlan.h"

#include <algorithm>
#include <sstream>

using namespace fut;
using namespace fut::shard;

namespace {

int64_t elemBytesOf(ScalarKind K) {
  switch (K) {
  case ScalarKind::Bool:
    return 1;
  case ScalarKind::I32:
  case ScalarKind::F32:
    return 4;
  case ScalarKind::I64:
  case ScalarKind::F64:
    return 8;
  }
  return 4;
}

/// Byte size when every dimension is constant; -1 when symbolic.
int64_t staticBytes(const Type &Ty) {
  int64_t N = 1;
  for (const Dim &D : Ty.shape()) {
    if (!D.isConst())
      return -1;
    N *= D.getConst().asInt64();
  }
  return N * elemBytesOf(Ty.elemKind());
}

bool isIdentityPerm(const std::vector<int> &Perm) {
  for (size_t I = 0; I < Perm.size(); ++I)
    if (Perm[I] != static_cast<int>(I))
      return false;
  return true;
}

/// True when every use of \p Arr inside \p B is an IndexExp whose first
/// index is the outer thread index — the condition under which a device
/// only ever touches its own row block.  The thread index is tracked
/// through scalar let-rebinds (`let i = tid`), in statement order, so an
/// index through such an alias still classifies as aligned.  Anything
/// else (slices, sequentialised SOACs over the array, uses inside nested
/// control flow, returning the array) is conservatively non-aligned.
bool allUsesAligned(const Body &B, const VName &Arr, const VName &Tid0) {
  NameSet TidAliases;
  TidAliases.insert(Tid0);
  auto IsTid = [&](const SubExp &SE) {
    return SE.isVar() && TidAliases.count(SE.getVar());
  };
  for (const Stm &S : B.Stms) {
    const Exp &E = *S.E;
    if (const auto *SEE = expDynCast<SubExpExp>(&E)) {
      if (SEE->Val.isVar() && SEE->Val.getVar() == Arr)
        return false; // Rebinding the array itself escapes the block view.
      if (S.Pat.size() == 1 && IsTid(SEE->Val))
        TidAliases.insert(S.Pat[0].Name);
      continue;
    }
    if (const auto *IX = expDynCast<IndexExp>(&E)) {
      if (IX->Arr == Arr && (IX->Indices.empty() || !IsTid(IX->Indices[0])))
        return false;
      continue; // Index positions are scalars and cannot use the array.
    }
    NameSet FV = freeVarsInExp(E);
    if (FV.count(Arr))
      return false;
  }
  for (const SubExp &R : B.Result)
    if (R.isVar() && R.getVar() == Arr)
      return false;
  return true;
}

} // namespace

const char *fut::shard::inputClassName(InputClass C) {
  return C == InputClass::Aligned ? "aligned" : "broadcast";
}

std::vector<std::pair<int64_t, int64_t>>
fut::shard::blockCuts(int64_t Width, int Devices) {
  int N = std::max(1, Devices);
  int64_t W = std::max<int64_t>(0, Width);
  std::vector<std::pair<int64_t, int64_t>> Cuts;
  Cuts.reserve(N);
  for (int D = 0; D < N; ++D)
    Cuts.emplace_back(W * D / N, W * (D + 1) / N);
  return Cuts;
}

void fut::shard::forEachKernel(
    const FunDef &F,
    const std::function<void(const KernelExp &, const Stm &, int Id,
                             bool TopLevel)> &Fn) {
  int Id = 0;
  std::function<void(const Body &, bool)> Walk = [&](const Body &B,
                                                     bool Top) {
    for (const Stm &S : B.Stms) {
      if (const auto *K = expDynCast<KernelExp>(S.E.get())) {
        Fn(*K, S, Id++, Top);
        continue;
      }
      forEachChildBody(*S.E,
                       [&](const Body &Inner) { Walk(Inner, false); });
    }
  };
  Walk(F.FBody, true);
}

KernelShardability fut::shard::analyseShardability(const KernelExp &K,
                                                   const Stm &S,
                                                   bool TopLevel) {
  KernelShardability R;
  for (const Param &Prm : S.Pat)
    if (Prm.Ty.isArray())
      R.Outputs.push_back(Prm.Name);
  for (const KernelExp::KInput &In : K.Inputs)
    R.Inputs.push_back({In.Arr, InputClass::Broadcast});

  if (!TopLevel) {
    R.WhyNot = "inside host control flow";
    return R;
  }
  if (K.GridDims.empty()) {
    // A gridless segmented kernel is one big reduction/scan over a single
    // segment: there is no outer map dimension to cut.
    R.WhyNot = "gridless segmented reduction";
    return R;
  }

  R.Sharded = true;
  R.Width = K.GridDims[0];
  if (R.Width.isConst())
    R.ConstWidth = R.Width.getConst().asInt64();

  // Histograms shard along the input-element dimension; every device
  // scatters into its own full-width partial, later folded with the
  // operator.  The destination is read-modify-written at data-dependent
  // bins, never by the thread index, so it must be resident whole on
  // every device — forced Broadcast even though it has no thread-body
  // uses that would disqualify it below.
  R.HistMerge = K.Op == KernelExp::OpKind::SegHist;

  const VName &Tid0 = K.ThreadIndices[0];
  for (size_t I = 0; I < K.Inputs.size(); ++I) {
    const KernelExp::KInput &In = K.Inputs[I];
    if (R.HistMerge && In.Arr == K.HistDest)
      continue;
    bool Aligned = In.Ty.isArray() && In.Ty.outerDim() == R.Width &&
                   !In.Tiled && isIdentityPerm(In.LayoutPerm) &&
                   allUsesAligned(K.ThreadBody, In.Arr, Tid0);
    if (Aligned)
      R.Inputs[I].Class = InputClass::Aligned;
  }
  return R;
}

std::vector<TransferEdge>
fut::shard::deriveTransfers(const FunDef &F,
                            const std::vector<KernelShard> &Kernels) {
  std::vector<TransferEdge> Out;

  struct PartInfo {
    int Producer = -1;
    SubExp Width;
    int64_t Bytes = -1;
  };
  NameMap<PartInfo> Part;
  std::vector<VName> PartOrder; // Deterministic gather order.

  auto Gather = [&](const VName &N, int Consumer) {
    auto It = Part.find(N);
    TransferEdge E;
    E.Arr = N;
    E.ProducerKernel = It->second.Producer;
    E.ConsumerKernel = Consumer;
    E.Bytes = It->second.Bytes;
    Out.push_back(std::move(E));
    Part.erase(It);
  };

  int Id = 0;
  std::function<void(const Body &)> Walk = [&](const Body &B) {
    for (const Stm &S : B.Stms) {
      if (const auto *K = expDynCast<KernelExp>(S.E.get())) {
        const KernelShard &KS = Kernels[Id];
        for (const KernelExp::KInput &In : K->Inputs) {
          auto It = Part.find(In.Arr);
          if (It == Part.end())
            continue;
          const ShardInput *SI = KS.findInput(In.Arr);
          bool AlignedOk = KS.Sharded && SI &&
                           SI->Class == InputClass::Aligned &&
                           It->second.Width == KS.Width;
          if (!AlignedOk)
            Gather(In.Arr, Id); // All-gather before this kernel.
        }
        if (KS.Sharded && KS.HistMerge) {
          // Histogram outputs are full-width partials replicated per
          // device, not block partitions: the plan records an explicit
          // merge edge (producer == consumer) instead of registering the
          // value as partitioned, and the folded result lives whole on
          // device 0 afterwards.
          for (const Param &Prm : S.Pat) {
            if (!Prm.Ty.isArray())
              continue;
            TransferEdge E;
            E.Arr = Prm.Name;
            E.ProducerKernel = Id;
            E.ConsumerKernel = Id;
            E.Bytes = staticBytes(Prm.Ty);
            Out.push_back(std::move(E));
          }
        } else if (KS.Sharded) {
          for (const Param &Prm : S.Pat) {
            if (!Prm.Ty.isArray())
              continue;
            if (!Part.count(Prm.Name))
              PartOrder.push_back(Prm.Name);
            Part[Prm.Name] =
                PartInfo{Id, KS.Width, staticBytes(Prm.Ty)};
          }
        }
        ++Id;
        continue;
      }
      // A host statement (including everything nested inside a loop or
      // branch it heads) observes array contents: any partitioned value
      // it touches must be gathered back first.
      NameSet FV = freeVarsInExp(*S.E);
      for (const VName &N : PartOrder)
        if (Part.count(N) && FV.count(N))
          Gather(N, -1);
      forEachChildBody(*S.E, [&](const Body &Inner) { Walk(Inner); });
    }
  };
  Walk(F.FBody);

  for (const SubExp &RS : F.FBody.Result)
    if (RS.isVar() && Part.count(RS.getVar()))
      Gather(RS.getVar(), -1); // Results are read back by the host.

  return Out;
}

std::vector<int64_t>
fut::shard::derivePeakBytes(const FunDef &F,
                            const std::vector<KernelShard> &Kernels,
                            const std::vector<TransferEdge> &Transfers,
                            int Devices) {
  int N = std::max(1, Devices);
  mem::LiveIntervals LI = mem::computeDeviceIntervals(F);

  NameSet Gathered;
  for (const TransferEdge &E : Transfers)
    Gathered.insert(E.Arr);

  // Block-resident names: sharded outputs and aligned inputs that are
  // never gathered hold only a row block per device.
  NameMap<int64_t> BlockWidth;
  for (const KernelShard &KS : Kernels) {
    if (!KS.Sharded)
      continue;
    // Histogram partials are replicated full-width per device (their
    // merge edge lands them in Gathered), never block-resident.
    if (!KS.HistMerge)
      for (const VName &O : KS.Outputs)
        BlockWidth[O] = KS.ConstWidth;
    for (const ShardInput &SI : KS.Inputs)
      if (SI.Class == InputClass::Aligned)
        BlockWidth.emplace(SI.Arr, KS.ConstWidth);
  }
  for (const TransferEdge &E : Transfers)
    BlockWidth.erase(E.Arr);

  int MaxEnd = 0;
  for (const mem::LiveInterval &Iv : LI.Intervals) {
    MaxEnd = std::max(MaxEnd, Iv.End);
    if (Iv.Bytes < 0)
      return std::vector<int64_t>(N, -1); // Symbolic: no static bound.
  }

  std::vector<int64_t> Peak(N, 0);
  for (int T = 0; T <= MaxEnd; ++T) {
    std::vector<int64_t> LiveNow(N, 0);
    for (const mem::LiveInterval &Iv : LI.Intervals) {
      if (Iv.Start > T || Iv.End < T)
        continue;
      auto BW = BlockWidth.find(Iv.Name);
      if (BW != BlockWidth.end() && BW->second > 0) {
        auto Cuts = blockCuts(BW->second, N);
        for (int D = 0; D < N; ++D)
          LiveNow[D] +=
              Iv.Bytes * (Cuts[D].second - Cuts[D].first) / BW->second;
      } else if (BW != BlockWidth.end() && BW->second == 0) {
        // Empty array: no bytes anywhere.
      } else if (Gathered.count(Iv.Name)) {
        for (int D = 0; D < N; ++D)
          LiveNow[D] += Iv.Bytes; // Replicated after the gather.
      } else {
        LiveNow[0] += Iv.Bytes; // Whole on device 0.
      }
    }
    for (int D = 0; D < N; ++D)
      Peak[D] = std::max(Peak[D], LiveNow[D]);
  }
  return Peak;
}

ShardPlan fut::shard::planShards(const Program &P,
                                 const ShardOptions &Opts) {
  ShardPlan SP;
  SP.Devices = std::max(1, Opts.Devices);
  for (const FunDef &F : P.Funs) {
    FunShardPlan FP;
    FP.Fun = F.Name;
    FP.PerDeviceMemBytes = Opts.PerDeviceMemBytes;
    forEachKernel(F, [&](const KernelExp &K, const Stm &S, int Id,
                         bool Top) {
      KernelShardability A = analyseShardability(K, S, Top);
      KernelShard KS;
      KS.KernelId = Id;
      KS.Sharded = A.Sharded;
      KS.WhyNot = std::move(A.WhyNot);
      KS.HistMerge = A.HistMerge;
      KS.Width = A.Width;
      KS.ConstWidth = A.ConstWidth;
      KS.Inputs = std::move(A.Inputs);
      KS.Outputs = std::move(A.Outputs);
      if (KS.Sharded && KS.ConstWidth >= 0)
        KS.Blocks = blockCuts(KS.ConstWidth, SP.Devices);
      FP.Kernels.push_back(std::move(KS));
    });
    FP.Transfers = deriveTransfers(F, FP.Kernels);
    FP.PlannedPeakBytes =
        derivePeakBytes(F, FP.Kernels, FP.Transfers, SP.Devices);
    SP.Funs.push_back(std::move(FP));
  }
  return SP;
}

std::string ShardPlan::str() const {
  std::ostringstream OS;
  OS << "shard plan (devices=" << Devices << ")\n";
  for (const FunShardPlan &FP : Funs) {
    int NumSharded = 0;
    for (const KernelShard &KS : FP.Kernels)
      NumSharded += KS.Sharded ? 1 : 0;
    OS << "function '" << FP.Fun << "': " << FP.Kernels.size()
       << " kernels (" << NumSharded << " sharded), "
       << FP.Transfers.size() << " transfers\n";
    for (const KernelShard &KS : FP.Kernels) {
      OS << "  kernel " << KS.KernelId << ": ";
      if (!KS.Sharded) {
        OS << "whole (" << KS.WhyNot << ")\n";
      } else {
        OS << "sharded width=" << KS.Width.str();
        if (!KS.Blocks.empty()) {
          OS << " blocks=";
          for (const auto &Blk : KS.Blocks)
            OS << "[" << Blk.first << "," << Blk.second << ")";
        }
        if (KS.HistMerge)
          OS << " hist-merge";
        OS << "\n";
      }
      for (const ShardInput &SI : KS.Inputs)
        OS << "    input " << SI.Arr.str() << ": "
           << inputClassName(SI.Class) << "\n";
      for (const VName &O : KS.Outputs)
        OS << "    output " << O.str() << "\n";
    }
    for (const TransferEdge &E : FP.Transfers) {
      OS << "  transfer '" << E.Arr.str() << "': kernel "
         << E.ProducerKernel << " -> ";
      if (E.ConsumerKernel < 0)
        OS << "host (gather";
      else if (E.ConsumerKernel == E.ProducerKernel)
        OS << "kernel " << E.ConsumerKernel << " (merge";
      else
        OS << "kernel " << E.ConsumerKernel << " (all-gather";
      if (E.Bytes >= 0)
        OS << ", " << E.Bytes << " bytes)";
      else
        OS << ", symbolic)";
      OS << "\n";
    }
    OS << "  peak bytes/device:";
    for (int64_t B : FP.PlannedPeakBytes)
      OS << " " << B;
    if (FP.PerDeviceMemBytes > 0)
      OS << " (budget " << FP.PerDeviceMemBytes << ")";
    OS << "\n";
  }
  return OS.str();
}
