//===- ShardPlan.h - Multi-device kernel sharding ---------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-device sharding stage: the flattening pipeline (Section 5)
/// produces flat, regular kernels whose outer grid dimension is a perfect
/// data-parallel map — precisely the property that lets work be carved
/// mechanically across N simulated devices.  planShards assigns every
/// top-level kernel either a contiguous block partition of its outer grid
/// dimension (device d owns rows [floor(dW/N), floor((d+1)W/N))) or a
/// reason it must run whole on device 0, classifies each kernel input as
///
///  * Aligned   — every thread-body use indexes the array with the outer
///    thread index first, the outer extent equals the grid width, and the
///    layout is untouched, so device d only needs its own row block; or
///  * Broadcast — anything else (conservative): every device needs the
///    whole array,
///
/// and records explicit inter-device transfer edges for values produced
/// partitioned but consumed whole (an all-gather costed on the copy
/// engines) or observed by host code (a host gather).
///
/// Like the memory plan, the shard plan is an artifact of compilation:
/// driver/Compiler runs planShards after memory planning,
/// check/VerifyShardPlan re-derives the decomposition to reject unsound
/// plans (overlapping ownership, missing boundary transfers, over-budget
/// shards), and gpusim executes it on a DeviceGroup.  The analyses
/// (analyseShardability, deriveTransfers, derivePeakBytes) are exposed
/// separately so the verifier never trusts the planner's bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_SHARD_SHARDPLAN_H
#define FUTHARKCC_SHARD_SHARDPLAN_H

#include "ir/IR.h"
#include "ir/Name.h"

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace fut {
namespace shard {

struct ShardOptions {
  int Devices = 1;
  /// Per-device memory budget the verifier checks shard peaks against;
  /// 0 disables the check.
  int64_t PerDeviceMemBytes = 0;
};

/// How a kernel input is distributed when the kernel is sharded.
enum class InputClass : uint8_t {
  Aligned,  ///< Device d holds only its own block of rows.
  Broadcast ///< Every device holds the full array.
};

const char *inputClassName(InputClass C);

struct ShardInput {
  VName Arr;
  InputClass Class = InputClass::Broadcast;
};

/// The sharding decision for one kernel (kernels are numbered in the same
/// statement-walk order the memory planner uses; thread bodies are
/// leaves).
struct KernelShard {
  int KernelId = 0;
  bool Sharded = false;
  std::string WhyNot; ///< Reason when not sharded.
  /// Histogram kernels shard along the input-element dimension, but every
  /// device accumulates into a full-width partial that must be folded with
  /// the operator (device order) rather than concatenated: the outputs are
  /// replicated, not block-partitioned, and the plan carries explicit
  /// merge edges instead of registering them as partitioned values.
  bool HistMerge = false;
  SubExp Width;       ///< Outer grid dimension (valid when Sharded).
  int64_t ConstWidth = -1; ///< Constant outer width; -1 when symbolic.
  /// Per-device row ownership [Start, End), recorded only for constant
  /// widths (symbolic widths are cut at runtime with blockCuts).
  std::vector<std::pair<int64_t, int64_t>> Blocks;
  std::vector<ShardInput> Inputs;
  std::vector<VName> Outputs; ///< Array outputs, partitioned along dim 0.

  const ShardInput *findInput(const VName &N) const {
    for (const ShardInput &SI : Inputs)
      if (SI.Arr == N)
        return &SI;
    return nullptr;
  }
};

/// An explicit inter-device data movement: \p Arr was produced partitioned
/// by kernel \p ProducerKernel and is consumed whole by kernel
/// \p ConsumerKernel (an all-gather), or by host code when ConsumerKernel
/// is -1 (a host gather).
struct TransferEdge {
  VName Arr;
  int ProducerKernel = -1;
  int ConsumerKernel = -1; ///< -1: gathered for host observation.
  int64_t Bytes = -1;      ///< Static array size; -1 when symbolic.
};

struct FunShardPlan {
  std::string Fun;
  std::vector<KernelShard> Kernels;
  std::vector<TransferEdge> Transfers;
  /// Statically derived per-device peak bytes over block-resident,
  /// replicated and device-0-only arrays; -1 when any live size is
  /// symbolic.
  std::vector<int64_t> PlannedPeakBytes;
  int64_t PerDeviceMemBytes = 0;

  const KernelShard *kernel(int Id) const {
    return Id >= 0 && Id < static_cast<int>(Kernels.size()) ? &Kernels[Id]
                                                            : nullptr;
  }
};

struct ShardPlan {
  int Devices = 1;
  std::vector<FunShardPlan> Funs;

  const FunShardPlan *forFun(const std::string &Name) const {
    for (const FunShardPlan &FP : Funs)
      if (FP.Fun == Name)
        return &FP;
    return nullptr;
  }

  /// Stable textual dump (the --print-shard-plan format, pinned by a
  /// golden test): deterministic order, no pointers, no unordered
  /// iteration.
  std::string str() const;
};

/// The canonical contiguous block partition of [0, Width) across
/// \p Devices: device d owns [floor(d*W/N), floor((d+1)*W/N)).  Every
/// component (planner, verifier, simulator) derives cuts through this one
/// function so ownership can never disagree.
std::vector<std::pair<int64_t, int64_t>> blockCuts(int64_t Width,
                                                   int Devices);

/// Walks every kernel statement of \p F in the same statement order as the
/// memory planner's walk (recursing through loop/branch bodies; kernel
/// thread bodies are leaves), numbering kernels from 0.  \p TopLevel is
/// true for kernels bound directly in the function body — only those are
/// sharding candidates.
void forEachKernel(
    const FunDef &F,
    const std::function<void(const KernelExp &, const Stm &, int Id,
                             bool TopLevel)> &Fn);

/// The shared planner/verifier analysis of one kernel: whether its outer
/// grid dimension can be block-partitioned, and how each input must be
/// distributed.  Independent of the device count.
struct KernelShardability {
  bool Sharded = false;
  std::string WhyNot;
  bool HistMerge = false;
  SubExp Width;
  int64_t ConstWidth = -1;
  std::vector<ShardInput> Inputs;
  std::vector<VName> Outputs;
};

KernelShardability analyseShardability(const KernelExp &K, const Stm &S,
                                       bool TopLevel);

/// Re-derives the transfer edges the sharding decisions in \p Kernels
/// require: partitioned values consumed broadcast (or by an unsharded
/// kernel, or under a different width) need an all-gather; partitioned
/// values observed by host code or returned need a host gather.  Used by
/// both planShards and the verifier.
std::vector<TransferEdge>
deriveTransfers(const FunDef &F, const std::vector<KernelShard> &Kernels);

/// Statically derives each device's peak live bytes under the plan:
/// block-resident arrays (aligned inputs and never-gathered sharded
/// outputs) contribute a proportional block share, gathered/broadcast
/// arrays contribute their full size on every device, everything else
/// lives whole on device 0.  Any symbolic live size makes every entry -1.
std::vector<int64_t>
derivePeakBytes(const FunDef &F, const std::vector<KernelShard> &Kernels,
                const std::vector<TransferEdge> &Transfers, int Devices);

/// Plans every function of a flattened program.  Pure and deterministic:
/// the same program and options always yield the same plan.
ShardPlan planShards(const Program &P, const ShardOptions &Opts);

} // namespace shard
} // namespace fut

#endif // FUTHARKCC_SHARD_SHARDPLAN_H
