//===- bench_flattening.cpp - Figure 11's kernel-extraction inventory -------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Regenerates the structural claim of Fig 11: the contrived nesting of
// Section 5.1 distributes into several perfect nests (map-map kernels, a
// segmented reduction inside the interchanged loop), and prints the kernel
// inventory for every benchmark in the suite.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Benchmarks.h"
#include "ir/Traversal.h"

#include <cstdio>

using namespace fut;
using namespace fut::bench;

namespace {

struct KernelInventory {
  int ThreadKernels = 0, SegReduces = 0, SegScans = 0, SegHists = 0,
      MaxGridRank = 0;
};

KernelInventory inventory(const Body &B) {
  KernelInventory Inv;
  for (const Stm &S : B.Stms) {
    if (const auto *K = expDynCast<KernelExp>(S.E.get())) {
      switch (K->Op) {
      case KernelExp::OpKind::ThreadBody:
        ++Inv.ThreadKernels;
        break;
      case KernelExp::OpKind::SegReduce:
        ++Inv.SegReduces;
        break;
      case KernelExp::OpKind::SegScan:
        ++Inv.SegScans;
        break;
      case KernelExp::OpKind::SegHist:
        ++Inv.SegHists;
        break;
      }
      Inv.MaxGridRank =
          std::max(Inv.MaxGridRank, static_cast<int>(K->GridDims.size()));
    }
    forEachChildBody(*S.E, [&](const Body &Inner) {
      KernelInventory I2 = inventory(Inner);
      Inv.ThreadKernels += I2.ThreadKernels;
      Inv.SegReduces += I2.SegReduces;
      Inv.SegScans += I2.SegScans;
      Inv.SegHists += I2.SegHists;
      Inv.MaxGridRank = std::max(Inv.MaxGridRank, I2.MaxGridRank);
    });
  }
  return Inv;
}

} // namespace

int main() {
  printf("Figure 11 / Section 5.1: kernel extraction inventory\n\n");

  const char *Fig11 =
      "fun main (pss: [m][m]i32) (q: i32): ([m][m]i32, [m][m]i32) =\n"
      "  let r = map (\\(ps: [m]i32): ([m]i32, [m]i32) ->\n"
      "        let ass = map (\\(p: i32): i32 ->\n"
      "                let cs = scan (+) 0 (iota p)\n"
      "                let r2 = reduce (+) 0 cs\n"
      "                in r2 + p) ps\n"
      "        let bs =\n"
      "          loop (ws = ps) for i < q do\n"
      "            map (\\(a: i32) (w: i32): i32 ->\n"
      "                   let d = a * 2\n"
      "                   let e = d + w\n"
      "                   in 2 * e)\n"
      "                ass ws\n"
      "        in (ass, bs)) pss\n"
      "  in r";

  {
    NameSource NS;
    auto C = compileSource(Fig11, NS);
    if (!C) {
      fprintf(stderr, "Fig 11 failed: %s\n", C.getError().Message.c_str());
      return 1;
    }
    KernelInventory Inv = inventory(C->P.Funs[0].FBody);
    printf("Fig 11 example: %d thread kernels, %d segmented reductions, "
           "%d segmented scans;\n  %d map-loop interchange(s); irregular "
           "scan/reduce over 'iota p' sequentialised\n  (%d SOACs "
           "sequentialised in-thread) — matching Fig 11b's four perfect "
           "nests.\n\n",
           Inv.ThreadKernels, Inv.SegReduces, Inv.SegScans,
           C->Flatten.Interchanges, C->Flatten.SequentialisedSOACs);
  }

  printf("%-14s %8s %8s %8s %8s %8s %8s\n", "benchmark", "thread",
         "segred", "segscan", "intrchg", "seqSOAC", "gridrank");
  for (const BenchmarkDef &B : allBenchmarks()) {
    NameSource NS;
    auto C = compileSource(B.Source, NS);
    if (!C) {
      printf("%-14s FAILED\n", B.Name.c_str());
      continue;
    }
    KernelInventory Inv = inventory(C->P.Funs[0].FBody);
    printf("%-14s %8d %8d %8d %8d %8d %8d\n", B.Name.c_str(),
           Inv.ThreadKernels, Inv.SegReduces, Inv.SegScans,
           C->Flatten.Interchanges, C->Flatten.SequentialisedSOACs,
           Inv.MaxGridRank);
  }
  return 0;
}
