//===- bench_ad.cpp - Reverse-mode AD training workloads --------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// The ML-training workload class for the VJP pass (DESIGN 5k): two
// gradient-descent programs differentiated end-to-end through the full
// verified pipeline and timed on the simulated device.
//
//   ad-logreg-train  Logistic regression where the *training loop itself*
//                    is inside the differentiated program: T unrolled GD
//                    steps over a scalar weight, so the reverse sweep pays
//                    for a stack-of-iterates tape.  The VJP's d loss/d w0
//                    is the hypergradient through the whole optimisation,
//                    checked against central finite differences of the
//                    primal through the reference interpreter.
//
//   ad-kmeans-gd     1-D k-means (k = 3) as a differentiable objective:
//                    mean squared distance to the nearest centroid
//                    (branch-based min, so the pullback exercises the
//                    if-adjoint).  The host runs plain gradient descent on
//                    the centroids, calling the compiled main_vjp each
//                    step; the loss must fall monotonically in total.
//
// Each row records simulated cycles for the primal and the VJP (the
// classic AD constant-factor claim), the statically planned tape bytes
// (MemPlan entries named adtape*), the plan's peak bound, and the
// worst gradient error vs finite differences — the quantities the CI AD
// leg asserts on from BENCH_trace.json.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/BenchTrace.h"
#include "driver/Compiler.h"
#include "interp/Interp.h"
#include "support/Utils.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace fut;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value dv(double V) { return Value::scalar(PrimValue::makeF64(V)); }
Value dvec(const std::vector<double> &Xs) {
  return makeVectorValue(ScalarKind::F64, Xs);
}

double scalarOf(const Value &V) { return V.getScalar().getFloat(); }

/// The memory plan's AD-tape accounting for main_vjp: statically planned
/// stack-of-iterates bytes.  The benches here pin their loop trip counts
/// so the tape is fully static (TapeSymbolic = 0).
struct TapeBytes {
  int64_t Static = 0;
  int Entries = 0;
  int Symbolic = 0;
};

TapeBytes tapePlannedBytes(const CompileResult &C) {
  TapeBytes T;
  if (const mem::FunPlan *FP = C.MemPlan.forFun("main_vjp")) {
    T.Static = FP->TapeBytes;
    T.Entries = FP->TapeArrays;
    T.Symbolic = FP->TapeSymbolic;
  }
  return T;
}

/// Central finite differences of the scalar-result primal with respect to
/// one scalar argument, through the reference interpreter (the same oracle
/// the gradient fuzzer uses).
ErrorOr<double> centralFd(const Program &P, std::vector<Value> Args,
                          size_t ArgIdx) {
  InterpOptions IO;
  IO.ConsumeOnUpdate = true;
  double X = scalarOf(Args[ArgIdx]);
  double H = 1e-6 * std::max(1.0, std::fabs(X));
  double Vals[2];
  for (int S = 0; S < 2; ++S) {
    Args[ArgIdx] = dv(X + (S == 0 ? H : -H));
    Interpreter I(P, IO);
    auto R = I.runFunction("main", Args);
    if (!R)
      return R.getError();
    Vals[S] = scalarOf((*R)[0]);
  }
  return (Vals[0] - Vals[1]) / (2 * H);
}

double relErr(double A, double B) {
  return std::fabs(A - B) / std::max({1.0, std::fabs(A), std::fabs(B)});
}

/// Logistic regression with the GD loop inside the program: T unrolled
/// steps on the scalar weight w (fixed literal trip count so the tape is
/// statically sized), then the final-loss evaluation.
std::string logregSource(int Iters) {
  std::string T = std::to_string(Iters);
  return
      "fun main (n: i32) (w0: f64) (b: f64) (xs: [n]f64) (ys: [n]f64)"
      ": f64 =\n"
      "  let w = loop (w = w0) for i < " + T + " do\n"
      "    let gs = map (\\(x: f64) (y: f64): f64 ->\n"
      "                    let z = y * (w * x + b)\n"
      "                    let s = 1.0f64 / (1.0f64 + exp z)\n"
      "                    in (0.0f64 - s) * y * x) xs ys\n"
      "    let g = (reduce (+) 0.0f64 gs) / (f64 n)\n"
      "    in w - 0.5f64 * g\n"
      "  let losses = map (\\(x: f64) (y: f64): f64 ->\n"
      "                      log (1.0f64 + exp (0.0f64 - y * (w * x + b))))\n"
      "                   xs ys\n"
      "  in (reduce (+) 0.0f64 losses) / (f64 n)\n";
}

/// k = 3 one-dimensional k-means objective: mean squared distance to the
/// nearest centroid.  The min is branch-based, so the adjoint routes each
/// point's contribution to exactly the centroid that claimed it.
const char *KmeansSource =
    "fun main (n: i32) (c1: f64) (c2: f64) (c3: f64) (xs: [n]f64): f64 =\n"
    "  let costs = map (\\(x: f64): f64 ->\n"
    "                     let d1 = (x - c1) * (x - c1)\n"
    "                     let d2 = (x - c2) * (x - c2)\n"
    "                     let d3 = (x - c3) * (x - c3)\n"
    "                     let m = if d1 < d2 then d1 else d2\n"
    "                     in if m < d3 then m else d3) xs\n"
    "  in (reduce (+) 0.0f64 costs) / (f64 n)\n";

ErrorOr<CompileResult> compileVjp(const std::string &Src) {
  NameSource NS;
  CompilerOptions O;
  O.VJP = "main";
  return compileSource(Src, NS, O);
}

ErrorOr<gpusim::RunResult> runVjp(const CompileResult &C,
                                  const std::vector<Value> &Args,
                                  const std::string &Fun) {
  DeviceRunOptions RO;
  RO.Device = gpusim::DeviceParams::gtx780();
  RO.Device.AsyncTimeline = false; // pinned serial cycles, like Fig 4
  RO.MemPlan = &C.MemPlan;
  return runOnDevice(C.P, Args, RO, Fun);
}

bool Ok = true;

void check(bool Cond, const char *What) {
  if (!Cond) {
    printf("REGRESSION: %s\n", What);
    Ok = false;
  }
}

} // namespace

static bool benchLogreg(bench::BenchTraceWriter &Trace) {
  // Separable data with label noise: y = sign(w* x + b* + noise).
  const int64_t N = 4096;
  const int Iters = 48;
  SplitMix64 Rng(0xad109);
  std::vector<double> Xs(N), Ys(N);
  for (int64_t I = 0; I < N; ++I) {
    Xs[I] = Rng.nextDouble() * 6.0 - 3.0;
    double Noise = (Rng.nextDouble() - 0.5) * 0.8;
    Ys[I] = (1.7 * Xs[I] - 0.4 + Noise) > 0 ? 1.0 : -1.0;
  }
  const double W0 = 0.1, B = -0.1;
  std::vector<Value> Primal = {iv(static_cast<int32_t>(N)), dv(W0), dv(B),
                               dvec(Xs), dvec(Ys)};

  auto C = compileVjp(logregSource(Iters));
  if (!C) {
    printf("ad-logreg-train FAILED to compile: %s\n",
           C.getError().Message.c_str());
    return false;
  }
  TapeBytes Tape = tapePlannedBytes(*C);

  auto Prim = runVjp(*C, Primal, "main");
  std::vector<Value> VArgs = Primal;
  VArgs.push_back(dv(1.0)); // seed on the single f64 result
  auto Vjp = runVjp(*C, VArgs, "main_vjp");
  if (!Prim || !Vjp) {
    printf("ad-logreg-train FAILED to run: %s\n",
           (Prim ? Vjp : Prim).getError().Message.c_str());
    return false;
  }
  // main_vjp : primal results ++ one adjoint per active (f64) input.
  if (Vjp->Outputs.size() != 5) {
    printf("ad-logreg-train: expected 5 outputs, got %zu\n",
           Vjp->Outputs.size());
    return false;
  }
  double LossTrained = scalarOf(Vjp->Outputs[0]);
  double DW0 = scalarOf(Vjp->Outputs[1]);
  double DB = scalarOf(Vjp->Outputs[2]);

  // The hypergradient through all 48 unrolled GD steps must match central
  // finite differences of the primal through the interpreter.
  auto FdW = centralFd(C->P, Primal, 1);
  auto FdB = centralFd(C->P, Primal, 2);
  if (!FdW || !FdB) {
    printf("ad-logreg-train FD FAILED: %s\n",
           (FdW ? FdB : FdW).getError().Message.c_str());
    return false;
  }
  double GradErr = std::max(relErr(DW0, *FdW), relErr(DB, *FdB));

  // Untrained baseline: the same program with a single GD step.  Training
  // through more iterations must reduce the final loss.
  auto C1 = compileVjp(logregSource(1));
  double LossUntrained = 0;
  if (C1) {
    auto R1 = runVjp(*C1, Primal, "main");
    if (R1)
      LossUntrained = scalarOf(R1->Outputs[0]);
  }

  printf("%-18s | primal %10.0f cy   vjp %10.0f cy  (%.2fx)\n",
         "ad-logreg-train", Prim->Cost.TotalCycles, Vjp->Cost.TotalCycles,
         Vjp->Cost.TotalCycles / Prim->Cost.TotalCycles);
  printf("%-18s | tape %lld B static (%d arrays, %d symbolic), plan peak "
         "%lld B\n",
         "", static_cast<long long>(Tape.Static), Tape.Entries,
         Tape.Symbolic, static_cast<long long>(Vjp->Cost.PlannedPeakBytes));
  printf("%-18s | loss %0.4f -> %0.4f over %d unrolled steps, grad rel "
         "err %.3g\n",
         "", LossUntrained, LossTrained, Iters, GradErr);

  check(GradErr < 1e-4, "logreg hypergradient disagrees with FD");
  check(Tape.Entries > 0, "logreg loop produced no tape arrays");
  check(Tape.Symbolic == 0, "logreg tape should be statically sized");
  check(Tape.Static > 0, "logreg tape has no planned bytes");
  check(Tape.Static <= Vjp->Cost.PlannedPeakBytes,
        "tape bytes exceed the planned peak");
  check(LossTrained < LossUntrained, "training did not reduce the loss");

  Trace.beginRun();
  Trace.record("ad-logreg-train", "gtx780",
               {{"primal_cycles", Prim->Cost.TotalCycles},
                {"vjp_cycles", Vjp->Cost.TotalCycles},
                {"vjp_overhead",
                 Vjp->Cost.TotalCycles / Prim->Cost.TotalCycles},
                {"tape_planned_bytes", static_cast<double>(Tape.Static)},
                {"planned_peak_bytes",
                 static_cast<double>(Vjp->Cost.PlannedPeakBytes)},
                {"grad_rel_err", GradErr},
                {"loss_untrained", LossUntrained},
                {"loss_trained", LossTrained},
                {"gd_steps", static_cast<double>(Iters)}});
  return true;
}

static bool benchKmeans(bench::BenchTraceWriter &Trace) {
  // Three well-separated 1-D clusters; centroids start bunched together.
  const int64_t N = 6144;
  SplitMix64 Rng(0xad209);
  const double Centers[3] = {-2.0, 0.5, 3.0};
  std::vector<double> Xs(N);
  for (int64_t I = 0; I < N; ++I)
    Xs[I] = Centers[Rng.nextBelow(3)] + (Rng.nextDouble() - 0.5) * 0.6;
  double Cs[3] = {-0.6, 0.0, 0.6};

  auto C = compileVjp(KmeansSource);
  if (!C) {
    printf("ad-kmeans-gd FAILED to compile: %s\n",
           C.getError().Message.c_str());
    return false;
  }
  TapeBytes Tape = tapePlannedBytes(*C);

  auto ArgsAt = [&](const double *P) {
    return std::vector<Value>{iv(static_cast<int32_t>(N)), dv(P[0]),
                              dv(P[1]), dv(P[2]), dvec(Xs)};
  };

  // One FD spot check at the starting point, against the first adjoint.
  std::vector<Value> VArgs = ArgsAt(Cs);
  VArgs.push_back(dv(1.0));
  auto First = runVjp(*C, VArgs, "main_vjp");
  if (!First || First->Outputs.size() != 5) {
    printf("ad-kmeans-gd FAILED first vjp run\n");
    return false;
  }
  auto Fd1 = centralFd(C->P, ArgsAt(Cs), 1);
  if (!Fd1) {
    printf("ad-kmeans-gd FD FAILED: %s\n", Fd1.getError().Message.c_str());
    return false;
  }
  double GradErr = relErr(scalarOf(First->Outputs[1]), *Fd1);

  auto Prim = runVjp(*C, ArgsAt(Cs), "main");
  if (!Prim) {
    printf("ad-kmeans-gd FAILED primal run\n");
    return false;
  }

  // Host-side gradient descent: every step runs the compiled main_vjp on
  // the device and moves the centroids along the adjoints.
  const int Steps = 40;
  const double Lr = 0.8;
  double LossBefore = scalarOf(First->Outputs[0]);
  double Loss = LossBefore;
  for (int S = 0; S < Steps; ++S) {
    std::vector<Value> A = ArgsAt(Cs);
    A.push_back(dv(1.0));
    auto R = runVjp(*C, A, "main_vjp");
    if (!R) {
      printf("ad-kmeans-gd FAILED at GD step %d\n", S);
      return false;
    }
    Loss = scalarOf(R->Outputs[0]);
    for (int K = 0; K < 3; ++K)
      Cs[K] -= Lr * scalarOf(R->Outputs[1 + K]);
  }

  printf("%-18s | primal %10.0f cy   vjp %10.0f cy  (%.2fx)\n",
         "ad-kmeans-gd", Prim->Cost.TotalCycles, First->Cost.TotalCycles,
         First->Cost.TotalCycles / Prim->Cost.TotalCycles);
  printf("%-18s | tape %lld B (loop-free objective), plan peak %lld B\n",
         "", static_cast<long long>(Tape.Static),
         static_cast<long long>(First->Cost.PlannedPeakBytes));
  printf("%-18s | loss %0.4f -> %0.4f over %d GD steps, centroids "
         "(%.2f %.2f %.2f), grad rel err %.3g\n",
         "", LossBefore, Loss, Steps, Cs[0], Cs[1], Cs[2], GradErr);

  check(GradErr < 1e-4, "kmeans gradient disagrees with FD");
  check(Tape.Static <= First->Cost.PlannedPeakBytes,
        "tape bytes exceed the planned peak");
  check(Loss < 0.5 * LossBefore, "kmeans GD did not reduce the loss");
  // With well-separated clusters GD should have found all three centers.
  for (int K = 0; K < 3; ++K) {
    double Best = 1e9;
    for (double Ctr : Centers)
      Best = std::min(Best, std::fabs(Cs[K] - Ctr));
    check(Best < 0.25, "a centroid did not converge to a cluster center");
  }

  Trace.beginRun();
  Trace.record("ad-kmeans-gd", "gtx780",
               {{"primal_cycles", Prim->Cost.TotalCycles},
                {"vjp_cycles", First->Cost.TotalCycles},
                {"vjp_overhead",
                 First->Cost.TotalCycles / Prim->Cost.TotalCycles},
                {"tape_planned_bytes", static_cast<double>(Tape.Static)},
                {"planned_peak_bytes",
                 static_cast<double>(First->Cost.PlannedPeakBytes)},
                {"grad_rel_err", GradErr},
                {"loss_before", LossBefore},
                {"loss_after", Loss},
                {"gd_steps", static_cast<double>(Steps)}});
  return true;
}

int main() {
  printf("Reverse-mode AD: gradient-descent training workloads (E17)\n\n");
  bench::BenchTraceWriter Trace;
  if (!benchLogreg(Trace))
    return 1;
  printf("\n");
  if (!benchKmeans(Trace))
    return 1;
  if (!Trace.write("BENCH_trace.json"))
    fprintf(stderr, "warning: could not write BENCH_trace.json\n");
  else
    printf("\nAD training counters written to BENCH_trace.json\n");
  return Ok ? 0 : 1;
}
