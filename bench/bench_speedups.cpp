//===- bench_speedups.cpp - Figure 13 and Table 1 ---------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Regenerates the paper's headline evaluation: per-benchmark speedup of the
// Futhark-compiled program over the reference-implementation model, on both
// device configurations, plus the geometric means reported in Section 1
// (1.81x over the benchmarks where Futhark wins against low-level code,
// 0.79x where it loses).
//
//===----------------------------------------------------------------------===//

#include "bench_suite/BenchTrace.h"
#include "bench_suite/Benchmarks.h"

#include <cmath>
#include <cstdio>

using namespace fut;
using namespace fut::bench;

int main() {
  printf("Figure 13 / Table 1: speedup vs reference implementations\n");
  printf("(simulated cycles; 'paper' columns are the PLDI'17 numbers)\n\n");
  printf("%-14s %-10s | %10s %10s %7s %7s | %10s %7s %7s\n", "benchmark",
         "suite", "fut(gtx)", "ref(gtx)", "spdup", "paper", "fut(amd)",
         "spdup", "paper");

  struct Row {
    std::string Name;
    double GTX = 0, AMD = 0;
  };
  std::vector<Row> Rows;
  BenchTraceWriter Trace;

  // Fig 13 is calibrated against the serial (--sync) cost model: the
  // reference hand-tuning factors were fitted under it, and the paper's
  // wall-clock ratios assume overlap on both sides.  The asynchronous
  // timeline is quantified separately (EXPERIMENTS.md E12); per-benchmark
  // overlap counters from an async run are recorded alongside each row.
  gpusim::DeviceParams GTX = gpusim::DeviceParams::gtx780();
  gpusim::DeviceParams AMD = gpusim::DeviceParams::w8100();
  GTX.AsyncTimeline = false;
  AMD.AsyncTimeline = false;
  const CompilerOptions Full;

  for (const BenchmarkDef &B : allBenchmarks()) {
    Trace.beginRun();
    auto G = measureSpeedup(B, GTX);
    auto GA = runBenchmark(B, Full, gpusim::DeviceParams::gtx780());
    if (G && GA)
      Trace.record(B.Name, "gtx780",
                   {{"fut_cycles", G->FutharkCycles},
                    {"ref_cycles", G->RefCycles},
                    {"speedup", G->Speedup},
                    {"async_cycles", GA->Cost.TotalCycles},
                    {"overlap_saved", GA->Cost.OverlapSavedCycles},
                    {"copy_busy", GA->Cost.CopyEngineBusy},
                    {"compute_busy", GA->Cost.ComputeEngineBusy}});
    Trace.beginRun();
    auto A = measureSpeedup(B, AMD);
    auto AA = runBenchmark(B, Full, gpusim::DeviceParams::w8100());
    if (A && AA)
      Trace.record(B.Name, "w8100",
                   {{"fut_cycles", A->FutharkCycles},
                    {"ref_cycles", A->RefCycles},
                    {"speedup", A->Speedup},
                    {"async_cycles", AA->Cost.TotalCycles},
                    {"overlap_saved", AA->Cost.OverlapSavedCycles},
                    {"copy_busy", AA->Cost.CopyEngineBusy},
                    {"compute_busy", AA->Cost.ComputeEngineBusy}});
    if (!G || !A) {
      printf("%-14s FAILED: %s\n", B.Name.c_str(),
             (!G ? G.getError() : A.getError()).Message.c_str());
      return 1;
    }
    printf("%-14s %-10s | %10.0f %10.0f %7.2f %7.2f | %10.0f %7.2f %7.2f\n",
           B.Name.c_str(), B.Suite.c_str(), G->FutharkCycles, G->RefCycles,
           G->Speedup, B.PaperSpeedupGTX, A->FutharkCycles, A->Speedup,
           B.PaperSpeedupW8100 > 0 ? B.PaperSpeedupW8100 : 0.0);
    Rows.push_back({B.Name, G->Speedup, A->Speedup});
  }

  if (!Trace.write("BENCH_trace.json"))
    fprintf(stderr, "warning: could not write BENCH_trace.json\n");
  else
    printf("\nper-benchmark trace counters written to BENCH_trace.json\n");

  // Geometric means on the GTX-like device, split like the paper:
  // benchmarks with a low-level CUDA/OpenCL reference are the 12 Rodinia +
  // FinPar + Parboil programs; Futhark wins on some and loses on others.
  auto Geomean = [](const std::vector<double> &Xs) {
    if (Xs.empty())
      return 0.0;
    double S = 0;
    for (double X : Xs)
      S += std::log(X);
    return std::exp(S / Xs.size());
  };

  std::vector<double> All, Wins, Losses, LowLevel;
  for (const Row &R : Rows) {
    All.push_back(R.GTX);
    const BenchmarkDef *B = findBenchmark(R.Name);
    if (B->Suite != "accelerate") {
      LowLevel.push_back(R.GTX);
      (R.GTX >= 1.0 ? Wins : Losses).push_back(R.GTX);
    }
  }
  printf("\ngeomean, all 16 benchmarks (gtx):            %.2fx\n",
         Geomean(All));
  printf("geomean, vs low-level references (12):       %.2fx (paper: "
         "1.81x on wins-dominant set)\n",
         Geomean(LowLevel));
  printf("geomean, low-level refs where Futhark wins:  %.2fx\n",
         Geomean(Wins));
  printf("geomean, low-level refs where Futhark loses: %.2fx (paper: "
         "0.79x)\n",
         Geomean(Losses));
  return 0;
}
