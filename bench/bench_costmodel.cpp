//===- bench_costmodel.cpp - Roofline vs pipeline calibration (E16) --------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Runs the full sixteen-benchmark suite under both kernel cost models and
// prints the per-benchmark calibration table of EXPERIMENTS.md E16:
// roofline cycles, pipeline cycles, their ratio, and the pipeline-only
// observables (divergent warps, coalescer excess, bank-conflict extra).
//
// Two invariants are asserted per benchmark:
//
//  * outputs are bit-identical under either model (and against the
//    reference interpreter) — the cost model prices cycles, it must never
//    change what a program computes;
//  * the model-independent counters (kernel launches, global transactions,
//    transferred bytes, atomic traffic, local accesses, and the
//    Coalesced + Scattered == GlobalTransactions decomposition) are
//    exactly equal across models.
//
// All rows land in BENCH_trace.json for CI's schema check.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/BenchTrace.h"
#include "bench_suite/Benchmarks.h"

#include <cstdio>
#include <string>

using namespace fut;
using namespace fut::bench;

namespace {

bool counterMismatch(const char *Name, int64_t A, int64_t B, bool &Ok) {
  if (A == B)
    return false;
  printf("    COUNTER MISMATCH %s: roofline %lld, pipeline %lld\n", Name,
         static_cast<long long>(A), static_cast<long long>(B));
  Ok = false;
  return true;
}

} // namespace

int main() {
  printf("Cost-model calibration: roofline vs pipeline (E16)\n\n");
  printf("%-16s | %12s %12s %6s | %6s %6s %10s %8s\n", "benchmark",
         "roofline", "pipeline", "ratio", "warps", "divrg", "coalexcess",
         "bankconf");

  BenchTraceWriter Trace;
  bool Ok = true;

  for (const BenchmarkDef &B : allBenchmarks()) {
    gpusim::DeviceParams Roof = gpusim::DeviceParams::gtx780();
    Roof.CostModelName = "roofline";
    gpusim::DeviceParams Pipe = Roof;
    Pipe.CostModelName = "pipeline";

    // Verify=true pins the roofline run against the reference
    // interpreter; the pipeline run is then compared against it.
    Trace.beginRun();
    auto R = runBenchmark(B, CompilerOptions(), Roof, /*Verify=*/true);
    if (!R) {
      printf("%-16s FAILED (roofline): %s\n", B.Name.c_str(),
             R.getError().Message.c_str());
      return 1;
    }
    auto P = runBenchmark(B, CompilerOptions(), Pipe);
    if (!P) {
      printf("%-16s FAILED (pipeline): %s\n", B.Name.c_str(),
             P.getError().Message.c_str());
      return 1;
    }

    // Invariant 1: bit-identical outputs.
    bool Identical = R->Outputs.size() == P->Outputs.size();
    for (size_t I = 0; Identical && I < R->Outputs.size(); ++I)
      Identical = R->Outputs[I] == P->Outputs[I];
    if (!Identical) {
      printf("%-16s OUTPUT DIVERGENCE between cost models\n",
             B.Name.c_str());
      Ok = false;
    }

    // Invariant 2: model-independent counters are exactly equal.
    const gpusim::CostReport &RC = R->Cost;
    const gpusim::CostReport &PC = P->Cost;
    counterMismatch("KernelLaunches", RC.KernelLaunches, PC.KernelLaunches,
                    Ok);
    counterMismatch("GlobalTransactions", RC.GlobalTransactions,
                    PC.GlobalTransactions, Ok);
    counterMismatch("TransferredBytes", RC.TransferredBytes,
                    PC.TransferredBytes, Ok);
    counterMismatch("AtomicTransactions", RC.AtomicTransactions,
                    PC.AtomicTransactions, Ok);
    counterMismatch("AtomicConflicts", RC.AtomicConflicts,
                    PC.AtomicConflicts, Ok);
    counterMismatch("LocalAccesses", RC.LocalAccesses, PC.LocalAccesses,
                    Ok);
    for (const gpusim::CostReport *CR : {&RC, &PC})
      if (CR->CoalescedTransactions + CR->ScatteredTransactions !=
          CR->GlobalTransactions) {
        printf("%-16s coalescing decomposition broken under %s\n",
               B.Name.c_str(), CR->CostModelUsed.c_str());
        Ok = false;
      }

    // Each run accumulates both models' totals, so either report carries
    // the calibration pair; the pipeline run also carries the profile.
    double Ratio = PC.PipelineKernelCycles > 0 && RC.RooflineKernelCycles > 0
                       ? PC.PipelineKernelCycles / PC.RooflineKernelCycles
                       : 0;
    printf("%-16s | %12.0f %12.0f %6.2f | %6lld %6lld %10lld %8lld\n",
           B.Name.c_str(), PC.RooflineKernelCycles, PC.PipelineKernelCycles,
           Ratio, static_cast<long long>(PC.WarpsSimulated),
           static_cast<long long>(PC.DivergentWarps),
           static_cast<long long>(PC.CoalescerExcessTx),
           static_cast<long long>(PC.BankConflictExtra));

    Trace.record(B.Name, "gtx780",
                 {{"roofline_kernel_cycles", PC.RooflineKernelCycles},
                  {"pipeline_kernel_cycles", PC.PipelineKernelCycles},
                  {"pipeline_ratio", Ratio},
                  {"warps", static_cast<double>(PC.WarpsSimulated)},
                  {"divergent_warps",
                   static_cast<double>(PC.DivergentWarps)},
                  {"coalescer_excess_tx",
                   static_cast<double>(PC.CoalescerExcessTx)},
                  {"bank_conflict_extra",
                   static_cast<double>(PC.BankConflictExtra)},
                  {"global_tx", static_cast<double>(PC.GlobalTransactions)},
                  {"outputs_identical", Identical ? 1.0 : 0.0}});
  }

  if (!Trace.write("BENCH_trace.json"))
    fprintf(stderr, "warning: could not write BENCH_trace.json\n");
  else
    printf("\ncost-model calibration written to BENCH_trace.json\n");
  return Ok ? 0 : 1;
}
