//===- bench_compile_time.cpp - Compiler-phase micro-benchmarks -------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// google-benchmark timings of the compiler phases themselves on the
// benchmark suite's largest programs — useful for tracking pipeline
// regressions (not a paper artifact).
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Benchmarks.h"
#include "parser/Desugar.h"
#include "uniq/Uniqueness.h"

#include <benchmark/benchmark.h>

using namespace fut;
using namespace fut::bench;

namespace {

const std::string &kmeansSource() {
  static const std::string Src = findBenchmark("kmeans")->Source;
  return Src;
}

void BM_Frontend(benchmark::State &State) {
  for (auto _ : State) {
    NameSource NS;
    auto P = frontend(kmeansSource(), NS);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_Frontend);

void BM_UniquenessCheck(benchmark::State &State) {
  NameSource NS;
  auto P = frontend(kmeansSource(), NS);
  for (auto _ : State) {
    auto E = checkProgramUniqueness(*P);
    benchmark::DoNotOptimize(E);
  }
}
BENCHMARK(BM_UniquenessCheck);

void BM_FullPipeline(benchmark::State &State) {
  for (auto _ : State) {
    NameSource NS;
    auto C = compileSource(kmeansSource(), NS);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_FullPipeline);

void BM_FullPipelineAllBenchmarks(benchmark::State &State) {
  for (auto _ : State) {
    for (const BenchmarkDef &B : allBenchmarks()) {
      NameSource NS;
      auto C = compileSource(B.Source, NS);
      benchmark::DoNotOptimize(C);
    }
  }
}
BENCHMARK(BM_FullPipelineAllBenchmarks)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
