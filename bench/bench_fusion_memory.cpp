//===- bench_fusion_memory.cpp - Figure 10's streaming fusion ---------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Regenerates the OptionPricing fusion story of Fig 10: the stream_map
// producer fuses with the consuming reduce into a stream_red (rule F6), and
// the per-thread memory footprint of the fused form is compared against the
// unfused pipeline (the paper's point is that fusion + sequentialisation
// shrinks the footprint from O(chunk) arrays to scalars).
//
//===----------------------------------------------------------------------===//

#include "bench_suite/BenchTrace.h"
#include "driver/Compiler.h"
#include "gpusim/Device.h"
#include "ir/Traversal.h"

#include <cstdio>

using namespace fut;

namespace {

const char *Fig10 =
    "fun main (n: i32): f32 =\n"
    "  let ys = stream_map (\\(iss: [m]i32): [m]f32 ->\n"
    "        let seed = if m > 0 then iss[0] else 0\n"
    "        let a = loop (a = f32 seed) for q < 30 do a * 0.9 + 0.1\n"
    "        let t = map (\\(i: i32): f32 -> a + f32 i * 0.001) iss\n"
    "        in scan (+) 0.0 t)\n"
    "      (iota n)\n"
    "  in reduce (+) 0.0 ys";

int countStreams(const Body &B, StreamExp::FormKind Form, bool &Found) {
  int N = 0;
  for (const Stm &S : B.Stms) {
    if (const auto *St = expDynCast<StreamExp>(S.E.get()))
      if (St->Form == Form) {
        ++N;
        Found = true;
      }
    forEachChildBody(*S.E, [&](const Body &Inner) {
      N += countStreams(Inner, Form, Found);
    });
  }
  return N;
}

} // namespace

int main() {
  printf("Figure 10: fusion of streaming operators (OptionPricing "
         "skeleton)\n\n");

  int64_t N = 16384;
  std::vector<Value> Args = {Value::scalar(PrimValue::makeI32(
      static_cast<int32_t>(N)))};

  fut::bench::BenchTraceWriter Trace;

  // Fused pipeline.
  Trace.beginRun();
  NameSource NS1;
  CompilerOptions Fused;
  auto CF = compileSource(Fig10, NS1, Fused);
  if (!CF) {
    fprintf(stderr, "compile failed: %s\n", CF.getError().Message.c_str());
    return 1;
  }
  printf("stream fusions performed (F6): %d (stream_map + reduce -> "
         "stream_red, Fig 10a -> 10b)\n",
         CF->Fusion.StreamFusions);

  gpusim::Device D;
  auto RF = D.runMain(CF->P, Args);
  if (RF)
    Trace.record("fig10-optionpricing", "gtx780",
                 {{"variant_fused", 1},
                  {"total_cycles", RF->Cost.TotalCycles},
                  {"global_tx", (double)RF->Cost.GlobalTransactions},
                  {"private_accesses", (double)RF->Cost.PrivateAccesses},
                  {"kernel_launches", (double)RF->Cost.KernelLaunches},
                  {"overlap_saved", RF->Cost.OverlapSavedCycles},
                  {"peak_device_bytes", (double)RF->Cost.PeakDeviceBytes},
                  {"planned_peak_bytes", (double)RF->Cost.PlannedPeakBytes},
                  {"freed_bytes", (double)RF->Cost.FreedBytes}});

  // Unfused pipeline.
  Trace.beginRun();
  NameSource NS2;
  CompilerOptions Unfused;
  Unfused.EnableFusion = false;
  auto CU = compileSource(Fig10, NS2, Unfused);
  if (!CU) {
    fprintf(stderr, "compile failed: %s\n", CU.getError().Message.c_str());
    return 1;
  }

  auto RU = D.runMain(CU->P, Args);
  if (RU)
    Trace.record("fig10-optionpricing", "gtx780",
                 {{"variant_fused", 0},
                  {"total_cycles", RU->Cost.TotalCycles},
                  {"global_tx", (double)RU->Cost.GlobalTransactions},
                  {"private_accesses", (double)RU->Cost.PrivateAccesses},
                  {"kernel_launches", (double)RU->Cost.KernelLaunches},
                  {"overlap_saved", RU->Cost.OverlapSavedCycles},
                  {"peak_device_bytes", (double)RU->Cost.PeakDeviceBytes},
                  {"planned_peak_bytes", (double)RU->Cost.PlannedPeakBytes},
                  {"freed_bytes", (double)RU->Cost.FreedBytes}});
  if (!RF || !RU) {
    fprintf(stderr, "run failed\n");
    return 1;
  }

  printf("\n%-24s %14s %14s\n", "", "fused (10c)", "unfused (10a)");
  printf("%-24s %14.0f %14.0f\n", "total cycles", RF->Cost.TotalCycles,
         RU->Cost.TotalCycles);
  printf("%-24s %14lld %14lld\n", "global transactions",
         (long long)RF->Cost.GlobalTransactions,
         (long long)RU->Cost.GlobalTransactions);
  printf("%-24s %14lld %14lld\n", "private accesses",
         (long long)RF->Cost.PrivateAccesses,
         (long long)RU->Cost.PrivateAccesses);
  printf("%-24s %14lld %14lld\n", "kernel launches",
         (long long)RF->Cost.KernelLaunches,
         (long long)RU->Cost.KernelLaunches);
  printf("%-24s %14lld %14lld\n", "peak device bytes",
         (long long)RF->Cost.PeakDeviceBytes,
         (long long)RU->Cost.PeakDeviceBytes);
  printf("\nfusion speedup: %.2fx; the fused form runs the whole pipeline "
         "in one kernel\nwithout materialising the intermediate [n] "
         "array.\n",
         RU->Cost.TotalCycles / RF->Cost.TotalCycles);

  // Static memory planning on a loop-heavy in-place pipeline: each
  // iteration materialises a large matrix, row-updates it in place, and
  // folds it into a small carried accumulator.  The runtime manager must
  // hold the consumed input and the fresh output simultaneously while
  // the row-updating kernel runs (two large blocks); the planner proves
  // the update consumes its input and aliases both into one slab, so
  // plan mode peaks at a single large block — at bit-identical cycles.
  const char *LoopHeavy =
      "fun main (n: i32): [64]f32 =\n"
      "  loop (acc = replicate 64 0.0) for i < 8 do\n"
      "    let big = map (\\(j: i32): [256]f32 ->\n"
      "                     map (\\(k: i32): f32 -> f32 (j + k + i) * 0.001)\n"
      "                         (iota 256))\n"
      "                  (iota 64)\n"
      "    let big2 = map (\\(r: [256]f32): [256]f32 -> r with [0] <- 1.0)\n"
      "                   big\n"
      "    in map (\\(j: i32): f32 -> acc[j] + big2[j, 0] + big2[j, 1])\n"
      "           (iota 64)";
  std::vector<Value> LArgs = {Value::scalar(PrimValue::makeI32(8))};
  NameSource NS3;
  auto CL = compileSource(LoopHeavy, NS3);
  if (!CL) {
    fprintf(stderr, "compile failed: %s\n", CL.getError().Message.c_str());
    return 1;
  }
  gpusim::DeviceParams Planned = gpusim::DeviceParams::gtx780();
  gpusim::DeviceParams Runtime = Planned;
  Runtime.UseMemPlan = false;
  Trace.beginRun();
  auto RP = gpusim::Device(Planned).runMain(CL->P, LArgs);
  auto RR = gpusim::Device(Runtime).runMain(CL->P, LArgs);
  if (!RP || !RR) {
    fprintf(stderr, "loop-heavy run failed\n");
    return 1;
  }
  Trace.record("memplan-loop-inplace", "gtx780",
               {{"planned_peak_bytes", (double)RP->Cost.PlannedPeakBytes},
                {"peak_device_bytes_plan", (double)RP->Cost.PeakDeviceBytes},
                {"peak_device_bytes_runtime", (double)RR->Cost.PeakDeviceBytes},
                {"hoisted_allocs", (double)RP->Cost.HoistedAllocs},
                {"reused_blocks", (double)RP->Cost.ReusedBlocks},
                {"total_cycles", RP->Cost.TotalCycles}});
  printf("\nstatic memory planning (loop-heavy in-place pipeline, 8 "
         "iterations):\n");
  printf("%-24s %14lld\n", "planned peak (bound)",
         (long long)RP->Cost.PlannedPeakBytes);
  printf("%-24s %14lld\n", "plan-mode peak bytes",
         (long long)RP->Cost.PeakDeviceBytes);
  printf("%-24s %14lld\n", "runtime peak bytes",
         (long long)RR->Cost.PeakDeviceBytes);
  printf("%-24s %14.2fx (cycles identical: %s)\n", "peak reduction",
         (double)RR->Cost.PeakDeviceBytes /
             (double)(RP->Cost.PeakDeviceBytes ? RP->Cost.PeakDeviceBytes
                                               : 1),
         RP->Cost.TotalCycles == RR->Cost.TotalCycles ? "yes" : "NO");

  if (!Trace.write("BENCH_trace.json"))
    fprintf(stderr, "warning: could not write BENCH_trace.json\n");
  else
    printf("\nfused/unfused trace counters written to BENCH_trace.json\n");
  return 0;
}
