//===- bench_histogram.cpp - Generalized-histogram benchmarks --------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// The CGO'20 generalized-histogram evaluation shapes, ported to
// reduce_by_index: the CUDA-SDK 256-bin byte histogram, the Parboil histo
// (wide, saturating), and the k-means accumulation step phrased as a
// histogram of per-cluster partial sums.  Each shape carries a
// hand-written reference-implementation model (RefConfig) and the compiled
// program must stay within its baseline.
//
// A second section sweeps histogram width at fixed input size under the
// forced-global lowering to expose the atomic-contention model: narrower
// histograms concentrate updates on fewer 128-byte segments, so
// AtomicConflicts must peak at the narrowest width and fall monotonically
// as the width grows.  A final two-row comparison shows the
// local-subhistogram vs global-atomics switch at the HistLocalWidthMax
// threshold.  All counters land in BENCH_trace.json.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/BenchTrace.h"
#include "bench_suite/Benchmarks.h"
#include "support/Utils.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace fut;
using namespace fut::bench;

namespace {

/// Deterministic inputs: n plus a pseudo-random non-negative [n]i32.
std::vector<Value> makeData(int64_t N, uint64_t Salt, int64_t Range) {
  SplitMix64 Rng(0x9157a6 + Salt);
  std::vector<PrimValue> Elems;
  for (int64_t I = 0; I < N; ++I)
    Elems.push_back(PrimValue::makeI32(
        static_cast<int32_t>(Rng.nextBelow(static_cast<uint64_t>(Range)))));
  return {Value::scalar(PrimValue::makeI32(static_cast<int32_t>(N))),
          Value::array(ScalarKind::I32, {N}, std::move(Elems))};
}

std::vector<BenchmarkDef> histogramSuite() {
  std::vector<BenchmarkDef> Suite;

  // CUDA-SDK histogram: 256 counting bins over byte-valued data.  The
  // SDK reference keeps per-warp subhistograms in shared memory and is
  // heavily hand-tuned, which the calibration factor models; its
  // structural model runs one combinator at a time (bin computation not
  // fused into the update pass).
  {
    BenchmarkDef B;
    B.Name = "histogram-sdk";
    B.Suite = "cgo20";
    B.Source =
        "fun main (n: i32) (xs: [n]i32): [256]i32 =\n"
        "  let bins = map (\\(x: i32): i32 -> x % 256) xs\n"
        "  let ones = map (\\(x: i32): i32 -> 1) xs\n"
        "  in reduce_by_index (replicate 256 0) (+) 0 bins ones\n";
    B.MakeInputs = [] { return makeData(1 << 17, 1, 1 << 20); };
    B.Ref.Fusion = false;
    B.Ref.HandTuningGTX = 1.1;
    B.Ref.HandTuningW8100 = 1.1;
    Suite.push_back(B);
  }

  // Parboil histo: a wide histogram (beyond the local-memory threshold,
  // so the global-atomic lowering fires) whose counts saturate at 255.
  // Saturation is a post-pass min — the accumulation operator itself must
  // stay commutative.  The Parboil reference is uncoalesced scatter code.
  {
    BenchmarkDef B;
    B.Name = "histogram-parboil";
    B.Suite = "cgo20";
    B.Source =
        "fun main (n: i32) (xs: [n]i32): [8192]i32 =\n"
        "  let bins = map (\\(x: i32): i32 -> x % 8192) xs\n"
        "  let ones = map (\\(x: i32): i32 -> 1) xs\n"
        "  let h = reduce_by_index (replicate 8192 0) (+) 0 bins ones\n"
        "  in map (\\(c: i32): i32 -> if c < 255 then c else 255) h\n";
    B.MakeInputs = [] { return makeData(1 << 17, 2, 1 << 22); };
    B.Ref.Fusion = false;
    B.Ref.Coalescing = false;
    Suite.push_back(B);
  }

  // k-means accumulation: per-cluster partial sums of the point values,
  // i.e. the histogram phrasing of the kmeans update step (CGO'20's
  // motivating application).  Narrow (k = 32), so contention is maximal
  // and the local-subhistogram lowering carries it.  The reference model
  // mirrors the Rodinia kmeans baseline: reductions on the host.
  {
    BenchmarkDef B;
    B.Name = "histogram-kmeans";
    B.Suite = "cgo20";
    B.Source =
        "fun main (n: i32) (xs: [n]i32): i32 =\n"
        "  let cs = map (\\(x: i32): i32 -> x % 32) xs\n"
        "  let vs = map (\\(x: i32): i32 -> x / 32) xs\n"
        "  let sums = reduce_by_index (replicate 32 0) (+) 0 cs vs\n"
        "  let cnts = reduce_by_index (replicate 32 0) (+) 0 cs\n"
        "                             (map (\\(x: i32): i32 -> 1) xs)\n"
        "  let upd = map (\\(s: i32) (c: i32): i32 ->\n"
        "                   if c == 0 then 0 else s / c) sums cnts\n"
        "  in reduce (+) 0 upd\n";
    B.MakeInputs = [] { return makeData(1 << 16, 3, 1 << 18); };
    B.Ref.ReduceOnHost = true;
    B.Ref.Fusion = false;
    Suite.push_back(B);
  }

  return Suite;
}

/// One width of the contention sweep: same input, different bin count.
std::string sweepSource(int64_t W) {
  std::string Ws = std::to_string(W);
  return "fun main (n: i32) (xs: [n]i32): [" + Ws + "]i32 =\n"
         "  let bins = map (\\(x: i32): i32 -> x % " + Ws + ") xs\n"
         "  let ones = map (\\(x: i32): i32 -> 1) xs\n"
         "  in reduce_by_index (replicate " + Ws + " 0) (+) 0 bins ones\n";
}

ErrorOr<gpusim::CostReport> runSweep(int64_t W,
                                     const gpusim::DeviceParams &DP,
                                     const std::vector<Value> &Inputs) {
  NameSource NS;
  auto C = compileSource(sweepSource(W), NS, CompilerOptions());
  if (!C)
    return C.getError();
  DeviceRunOptions RO;
  RO.Device = DP;
  RO.MemPlan = &C->MemPlan;
  auto R = runOnDevice(C->P, Inputs, RO);
  if (!R)
    return R.getError();
  return R->Cost;
}

} // namespace

int main() {
  printf("Generalized histograms: CGO'20 shapes + atomic-contention "
         "curves\n\n");

  BenchTraceWriter Trace;
  bool Ok = true;

  // --- Part 1: the CGO'20 benchmark shapes vs their reference models ---
  printf("%-18s | %10s %10s %7s | %9s %9s\n", "benchmark", "fut(gtx)",
         "ref(gtx)", "spdup", "atomic_tx", "conflicts");
  gpusim::DeviceParams GTX = gpusim::DeviceParams::gtx780();
  GTX.AsyncTimeline = false;

  for (const BenchmarkDef &B : histogramSuite()) {
    // Value transparency first: the compiled program must agree with the
    // reference interpreter before any timing is reported.
    auto V = runBenchmark(B, CompilerOptions(),
                          gpusim::DeviceParams::gtx780(), /*Verify=*/true);
    if (!V) {
      printf("%-18s FAILED verification: %s\n", B.Name.c_str(),
             V.getError().Message.c_str());
      return 1;
    }
    auto S = measureSpeedup(B, GTX);
    if (!S) {
      printf("%-18s FAILED: %s\n", B.Name.c_str(),
             S.getError().Message.c_str());
      return 1;
    }
    printf("%-18s | %10.0f %10.0f %6.2fx | %9lld %9lld\n", B.Name.c_str(),
           S->FutharkCycles, S->RefCycles, S->Speedup,
           static_cast<long long>(S->FutharkCost.AtomicTransactions),
           static_cast<long long>(S->FutharkCost.AtomicConflicts));
    Trace.beginRun();
    Trace.record(B.Name, "gtx780",
                 {{"fut_cycles", S->FutharkCycles},
                  {"ref_cycles", S->RefCycles},
                  {"speedup", S->Speedup},
                  {"atomic_tx",
                   static_cast<double>(S->FutharkCost.AtomicTransactions)},
                  {"atomic_conflicts",
                   static_cast<double>(S->FutharkCost.AtomicConflicts)}});
    // The compiled program fuses the bin computation into the update pass
    // and picks the lowering per width; it must stay within the reference
    // baseline (speedup >= 1 after hand-tuning calibration).
    if (S->Speedup < 1.0) {
      printf("%-18s REGRESSION: slower than its reference baseline\n",
             B.Name.c_str());
      Ok = false;
    }
  }

  // --- Part 2: contention curve under the forced-global lowering ---
  // One input, shrinking bin count: fewer 128-byte destination segments
  // per warp batch means more lanes collide on one segment, so conflicts
  // rise as the width narrows while issued transactions fall.
  printf("\ncontention sweep (forced global atomics, n = 2^17):\n");
  printf("%8s | %10s %10s %12s\n", "width", "atomic_tx", "conflicts",
         "makespan");
  gpusim::DeviceParams Global = gpusim::DeviceParams::gtx780();
  Global.HistLocalWidthMax = 0; // force the global-atomic strategy
  std::vector<Value> SweepIn = makeData(1 << 17, 7, 1 << 22);
  const int64_t Widths[] = {16, 128, 1024, 8192, 65536};
  int64_t PrevConflicts = -1;
  int64_t FirstConflicts = 0, LastConflicts = 0;
  for (int64_t W : Widths) {
    auto C = runSweep(W, Global, SweepIn);
    if (!C) {
      printf("width %lld FAILED: %s\n", static_cast<long long>(W),
             C.getError().Message.c_str());
      return 1;
    }
    printf("%8lld | %10lld %10lld %12.0f\n", static_cast<long long>(W),
           static_cast<long long>(C->AtomicTransactions),
           static_cast<long long>(C->AtomicConflicts), C->TotalCycles);
    Trace.beginRun();
    Trace.record("hist-contention", "width=" + std::to_string(W),
                 {{"width", static_cast<double>(W)},
                  {"atomic_tx", static_cast<double>(C->AtomicTransactions)},
                  {"atomic_conflicts",
                   static_cast<double>(C->AtomicConflicts)},
                  {"makespan", C->TotalCycles}});
    if (PrevConflicts >= 0 && C->AtomicConflicts > PrevConflicts) {
      printf("width %lld REGRESSION: conflicts rose as width grew\n",
             static_cast<long long>(W));
      Ok = false;
    }
    if (PrevConflicts < 0)
      FirstConflicts = C->AtomicConflicts;
    LastConflicts = C->AtomicConflicts;
    PrevConflicts = C->AtomicConflicts;
  }
  if (FirstConflicts <= LastConflicts) {
    printf("REGRESSION: narrowest width is not the conflict worst case\n");
    Ok = false;
  }

  // --- Part 3: the lowering switch at HistLocalWidthMax ---
  // Same program either side of the threshold: below it the local
  // strategy runs conflict-free (subhistogram merges only); above it the
  // global strategy pays per-collision serialisation.
  printf("\nlowering switch (default threshold %lld):\n",
         static_cast<long long>(gpusim::DeviceParams::gtx780()
                                    .HistLocalWidthMax));
  printf("%8s %8s | %10s %10s\n", "width", "strategy", "atomic_tx",
         "conflicts");
  gpusim::DeviceParams Default = gpusim::DeviceParams::gtx780();
  for (int64_t W : {int64_t(4096), int64_t(8192)}) {
    auto C = runSweep(W, Default, SweepIn);
    if (!C) {
      printf("width %lld FAILED: %s\n", static_cast<long long>(W),
             C.getError().Message.c_str());
      return 1;
    }
    bool Local = W <= Default.HistLocalWidthMax;
    printf("%8lld %8s | %10lld %10lld\n", static_cast<long long>(W),
           Local ? "local" : "global",
           static_cast<long long>(C->AtomicTransactions),
           static_cast<long long>(C->AtomicConflicts));
    Trace.beginRun();
    Trace.record("hist-switch", std::string(Local ? "local" : "global"),
                 {{"width", static_cast<double>(W)},
                  {"atomic_tx", static_cast<double>(C->AtomicTransactions)},
                  {"atomic_conflicts",
                   static_cast<double>(C->AtomicConflicts)}});
    if (Local && C->AtomicConflicts != 0) {
      printf("REGRESSION: local strategy charged global conflicts\n");
      Ok = false;
    }
    if (!Local && C->AtomicConflicts == 0) {
      printf("REGRESSION: global strategy saw no contention\n");
      Ok = false;
    }
  }

  if (!Trace.write("BENCH_trace.json"))
    fprintf(stderr, "warning: could not write BENCH_trace.json\n");
  else
    printf("\nhistogram counters written to BENCH_trace.json\n");
  return Ok ? 0 : 1;
}
