//===- bench_shard.cpp - Multi-device sharding scaling curves --------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Strong-scaling curves for the shard planner: each benchmark is compiled
// and run at 1, 2, 4 and 8 simulated devices, and the makespan speedup
// over the single-device baseline is reported per device count.  The
// suite is map-pipeline-heavy by design — flat kernels whose aligned
// producer/consumer chains stay block-partitioned end to end, which is
// exactly the shape Section 5's flattening guarantees and the shape that
// should scale; a reduction-tailed member is included to show the
// all-gather + unsharded-kernel tax.  Outputs at every device count are
// checked bit-identical to the 1-device run before any timing is
// reported, and all counters land in BENCH_trace.json.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/BenchTrace.h"
#include "driver/Compiler.h"
#include "support/Utils.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace fut;
using namespace fut::bench;

namespace {

struct ScalingBench {
  std::string Name;
  std::string Source;
  int64_t N; ///< outer width; every kernel shards along it
  /// True for the aligned-chain members that must scale (the regression
  /// gate and the 1.5x@4 expectation apply); false for the reduce-tail
  /// anti-pattern member, whose all-gather tax is the point being shown.
  bool ExpectScaling = true;
};

/// Deterministic inputs: n plus a pseudo-random [n]i32.
std::vector<Value> makeInputs(int64_t N) {
  SplitMix64 Rng(0x5ca11ab1eULL);
  std::vector<PrimValue> Elems;
  for (int64_t I = 0; I < N; ++I)
    Elems.push_back(PrimValue::makeI32(
        static_cast<int32_t>(Rng.nextBelow(2001)) - 1000));
  return {Value::scalar(PrimValue::makeI32(static_cast<int32_t>(N))),
          Value::array(ScalarKind::I32, {N}, std::move(Elems))};
}

std::vector<ScalingBench> scalingSuite() {
  std::vector<ScalingBench> Suite;

  // A deep chain of cheap maps: every kernel is sharded, every
  // producer/consumer edge is aligned, no inter-device traffic at all.
  Suite.push_back(
      {"map-chain",
       "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
       "  let a = map (\\(x: i32): i32 -> x * 3 + 1) xs\n"
       "  let b = map (\\(x: i32): i32 -> x - x / 7) a\n"
       "  let c = map (\\(x: i32): i32 -> x * x + 13) b\n"
       "  let d = map (\\(x: i32): i32 -> x % 1000003) c\n"
       "  let e = map (\\(x: i32): i32 -> x * 5 - 7) d\n"
       "  let f = map (\\(x: i32): i32 -> x + x / 3) e\n"
       "  in map (\\(x: i32): i32 -> x * 2 + 1) f\n",
       1 << 19});

  // Compute-dense threads: an inner reduction over a thread-private iota
  // gives each row real arithmetic, so kernel time dwarfs launch cost.
  Suite.push_back(
      {"inner-reduce",
       "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
       "  map (\\(x: i32): i32 -> reduce (+) x (iota 1024)) xs\n",
       1 << 14});

  // A sequential loop in every thread (k-means / nbody inner-loop shape).
  Suite.push_back(
      {"thread-loop",
       "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
       "  map (\\(x: i32): i32 ->\n"
       "         loop (acc = x) for i < 1024 do acc + i * 3 - acc / 5)\n"
       "      xs\n",
       1 << 14});

  // The anti-pattern member: a reduction tail forces an all-gather of the
  // partitioned chain output into an unsharded segmented reduction, so
  // scaling flattens — the curve documents the decomposition tax.
  Suite.push_back(
      {"reduce-tail",
       "fun main (n: i32) (xs: [n]i32): i32 =\n"
       "  let a = map (\\(x: i32): i32 -> x * x + 1) xs\n"
       "  let b = map (\\(x: i32): i32 -> x - x / 9) a\n"
       "  in reduce (+) 0 b\n",
       1 << 15, /*ExpectScaling=*/false});

  return Suite;
}

} // namespace

int main() {
  printf("Multi-device sharding: strong scaling at 1/2/4/8 devices\n");
  printf("(simulated makespan cycles; speedup vs the 1-device run)\n\n");
  printf("%-14s %8s | %12s %8s | %10s %10s %8s\n", "benchmark", "devices",
         "makespan", "speedup", "interdev_B", "shard_lnch", "peak0_B");

  BenchTraceWriter Trace;
  const int DeviceCounts[] = {1, 2, 4, 8};
  int FourDeviceWins = 0;
  bool Ok = true;

  for (const ScalingBench &B : scalingSuite()) {
    std::vector<Value> Inputs = makeInputs(B.N);
    double Baseline = 0;
    std::vector<Value> BaseOutputs;

    for (int Devices : DeviceCounts) {
      NameSource NS;
      CompilerOptions CO;
      CO.Devices = Devices;
      auto C = compileSource(B.Source, NS, CO);
      if (!C) {
        printf("%-14s FAILED to compile: %s\n", B.Name.c_str(),
               C.getError().Message.c_str());
        return 1;
      }
      DeviceRunOptions RO;
      RO.MemPlan = &C->MemPlan;
      if (Devices > 1) {
        RO.Shards = &C->Shards;
        RO.Devices = Devices;
      }
      auto R = runOnDevice(C->P, Inputs, RO);
      if (!R) {
        printf("%-14s FAILED at %d devices: %s\n", B.Name.c_str(), Devices,
               R.getError().Message.c_str());
        return 1;
      }

      // Value transparency first, timing second: every device count must
      // reproduce the 1-device outputs bit-for-bit.
      if (Devices == 1) {
        Baseline = R->Cost.TotalCycles;
        BaseOutputs = R->Outputs;
      } else {
        if (R->Outputs.size() != BaseOutputs.size()) {
          printf("%-14s arity drift at %d devices\n", B.Name.c_str(),
                 Devices);
          return 1;
        }
        for (size_t J = 0; J < BaseOutputs.size(); ++J)
          if (!(R->Outputs[J] == BaseOutputs[J])) {
            printf("%-14s result drift at %d devices (output %zu)\n",
                   B.Name.c_str(), Devices, J);
            return 1;
          }
      }

      double Speedup =
          R->Cost.TotalCycles > 0 ? Baseline / R->Cost.TotalCycles : 0;
      int64_t Peak0 = R->Cost.PerDevicePeakBytes.empty()
                          ? R->Cost.PeakDeviceBytes
                          : R->Cost.PerDevicePeakBytes[0];
      printf("%-14s %8d | %12.0f %7.2fx | %10lld %10lld %8lld\n",
             B.Name.c_str(), Devices, R->Cost.TotalCycles, Speedup,
             static_cast<long long>(R->Cost.InterDeviceBytes),
             static_cast<long long>(R->Cost.ShardedLaunches),
             static_cast<long long>(Peak0));

      Trace.beginRun();
      Trace.record(B.Name, "devices=" + std::to_string(Devices),
                   {{"devices", static_cast<double>(Devices)},
                    {"makespan", R->Cost.TotalCycles},
                    {"speedup", Speedup},
                    {"kernel_cycles", R->Cost.KernelCycles},
                    {"interdev_bytes",
                     static_cast<double>(R->Cost.InterDeviceBytes)},
                    {"interdev_cycles", R->Cost.InterDeviceCycles},
                    {"sharded_launches",
                     static_cast<double>(R->Cost.ShardedLaunches)},
                    {"peak_dev0_bytes", static_cast<double>(Peak0)}});

      if (Devices == 4 && B.ExpectScaling && Speedup >= 1.5)
        ++FourDeviceWins;
      // Aligned chains have no inter-device traffic, so more devices can
      // only shrink the makespan; the reduce-tail member is exempt — its
      // all-gather tax exceeding the kernel saving is the result.
      if (B.ExpectScaling && Devices > 1 &&
          R->Cost.TotalCycles > Baseline * 1.0001) {
        printf("%-14s REGRESSION: %d devices slower than 1\n",
               B.Name.c_str(), Devices);
        Ok = false;
      }
    }
    printf("\n");
  }

  if (!Trace.write("BENCH_trace.json"))
    fprintf(stderr, "warning: could not write BENCH_trace.json\n");
  else
    printf("shard scaling counters written to BENCH_trace.json\n");

  printf("benchmarks with >= 1.5x makespan speedup at 4 devices: %d\n",
         FourDeviceWins);
  if (FourDeviceWins < 2) {
    printf("FAILED: expected at least 2 scaling-suite members to reach "
           "1.5x at 4 devices\n");
    return 1;
  }
  return Ok ? 0 : 1;
}
