//===- bench_ablations.cpp - Section 6.1.1 optimisation-impact table --------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Regenerates Section 6.1.1 ("Impact of Optimisations"): each optimisation
// is turned off individually and the affected benchmarks re-run on the
// GTX780-like device; the table prints slowdown factors next to the
// paper's.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Benchmarks.h"

#include <cstdio>
#include <map>
#include <string>

using namespace fut;
using namespace fut::bench;

namespace {

double cyclesWith(const BenchmarkDef &B, const CompilerOptions &O) {
  // Ablation ratios are calibrated under the serial (--sync) cost model;
  // launch pipelining in the async timeline would otherwise discount
  // exactly the launch-heavy unoptimised variants being measured.
  gpusim::DeviceParams DP = gpusim::DeviceParams::gtx780();
  DP.AsyncTimeline = false;
  auto R = runBenchmark(B, O, DP);
  if (!R) {
    fprintf(stderr, "%s failed: %s\n", B.Name.c_str(),
            R.getError().Message.c_str());
    return -1;
  }
  return R->Cost.TotalCycles;
}

void report(const char *Title,
            const std::map<std::string, double> &PaperImpact,
            const CompilerOptions &Disabled) {
  printf("\n%s\n", Title);
  printf("%-14s %10s %12s %8s %8s\n", "benchmark", "full", "disabled",
         "impact", "paper");
  for (const auto &[Name, Paper] : PaperImpact) {
    const BenchmarkDef *B = findBenchmark(Name);
    if (!B)
      continue;
    double Full = cyclesWith(*B, CompilerOptions{});
    double Off = cyclesWith(*B, Disabled);
    if (Full < 0 || Off < 0)
      continue;
    printf("%-14s %10.0f %12.0f %7.2fx %7.2fx\n", Name.c_str(), Full, Off,
           Off / Full, Paper);
  }
}

} // namespace

int main() {
  printf("Section 6.1.1: impact of individual optimisations\n");
  printf("(slowdown when the optimisation is disabled, GTX780-like "
         "device)\n");

  {
    CompilerOptions O;
    O.EnableFusion = false;
    report("Fusion disabled",
           {{"kmeans", 1.42},
            {"lavamd", 4.55},
            {"myocyte", 1.66},
            {"srad", 1.21},
            {"crystal", 10.1},
            {"locvolcalib", 9.4},
            {"nbody", 0.0},        // paper: fails without fusion (OOM)
            {"optionpricing", 0.0}, // paper: fails without fusion (OOM)
            {"mriq", 0.0}},         // paper: fails without fusion (OOM)
           O);
    printf("(paper reports 0.00x entries as failing without fusion due to "
           "increased storage;\n our simulator has no capacity limit, so "
           "they show as slowdowns instead)\n");
  }

  {
    CompilerOptions O;
    O.Locality.EnableCoalescing = false;
    report("Coalescing disabled",
           {{"kmeans", 9.26},
            {"myocyte", 4.2},
            {"optionpricing", 8.79},
            {"locvolcalib", 8.4}},
           O);
  }

  {
    CompilerOptions O;
    O.Locality.EnableTiling = false;
    report("Tiling disabled",
           {{"lavamd", 1.35}, {"mriq", 1.33}, {"nbody", 2.29}}, O);
  }

  {
    CompilerOptions O;
    O.Flatten.EnableSegReduce = false;
    report("Rule G5 (vectorised-reduce interchange) disabled",
           {{"kmeans", 0.0}}, O);
    printf("(not separately measured in the paper; included as an extra "
           "ablation)\n");
  }

  {
    CompilerOptions O;
    O.Flatten.EnableInterchange = false;
    report("Rule G7 (map-loop interchange) disabled",
           {{"locvolcalib", 0.0}}, O);
    printf("(the paper calls G7 'essential' for LocVolCalib; not given as "
           "a factor)\n");
  }
  return 0;
}
