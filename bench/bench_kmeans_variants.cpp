//===- bench_kmeans_variants.cpp - Figure 4 and the in-place ablation -------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Regenerates the K-means cluster-counting comparison of Fig 4 and the
// in-place-updates ablation of Section 6.1.1: the work-inefficient
// fully-parallel formulation (Fig 4b, O(n*k) work, the only option without
// in-place updates) against the stream_red formulation (Fig 4c), plus the
// purely sequential loop (Fig 4a) on the host for reference.  The paper
// reports the 4b formulation to be 8.3x slower.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gpusim/Device.h"
#include "support/Utils.h"

#include <cstdio>

using namespace fut;

namespace {

const char *Fig4a =
    "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
    "  loop (counts = replicate k 0) for i < n do\n"
    "    let cluster = membership[i]\n"
    "    in counts with [cluster] <- counts[cluster] + 1";

const char *Fig4b =
    "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
    "  let increments =\n"
    "    map (\\(cluster: i32): [k]i32 ->\n"
    "           let incr = replicate k 0\n"
    "           let incr[cluster] = 1\n"
    "           in incr)\n"
    "        membership\n"
    "  in reduce (map (+)) (replicate k 0) increments";

const char *Fig4c =
    "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
    "  stream_red (map (+))\n"
    "    (\\(acc: *[k]i32) (chunk: [chunksize]i32): [k]i32 ->\n"
    "       loop (acc) for i < chunksize do\n"
    "         let cluster = chunk[i]\n"
    "         in acc with [cluster] <- acc[cluster] + 1)\n"
    "    (replicate k 0) membership";

double run(const char *Src, const char *Name) {
  NameSource NS;
  auto C = compileSource(Src, NS);
  if (!C) {
    fprintf(stderr, "%s: %s\n", Name, C.getError().Message.c_str());
    return -1;
  }
  int64_t N = 65536, K = 32;
  SplitMix64 Rng(42);
  std::vector<int64_t> Member(N);
  for (auto &M : Member)
    M = static_cast<int64_t>(Rng.nextBelow(K));
  std::vector<Value> Args = {Value::scalar(PrimValue::makeI32(K)),
                             Value::scalar(PrimValue::makeI32(N)),
                             makeIntVectorValue(ScalarKind::I32, Member)};
  // Fig 4 cycle counts are pinned under the serial (--sync) cost model.
  gpusim::DeviceParams DP = gpusim::DeviceParams::gtx780();
  DP.AsyncTimeline = false;
  gpusim::Device D(DP);
  auto R = D.runMain(C->P, Args);
  if (!R) {
    fprintf(stderr, "%s: %s\n", Name, R.getError().Message.c_str());
    return -1;
  }
  printf("%-28s %12.0f cycles   (%s)\n", Name, R->Cost.TotalCycles,
         R->Cost.str().c_str());
  return R->Cost.TotalCycles;
}

/// Runs Src under the static plan and under the --no-mem-plan runtime
/// manager and prints the observed plan-mode peak (with the plan's
/// static bound) against the runtime peak; cycles must agree.
void comparePeaks(const char *Src, const char *Name) {
  NameSource NS;
  auto C = compileSource(Src, NS);
  if (!C)
    return;
  int64_t N = 65536, K = 32;
  SplitMix64 Rng(42);
  std::vector<int64_t> Member(N);
  for (auto &M : Member)
    M = static_cast<int64_t>(Rng.nextBelow(K));
  std::vector<Value> Args = {Value::scalar(PrimValue::makeI32(K)),
                             Value::scalar(PrimValue::makeI32(N)),
                             makeIntVectorValue(ScalarKind::I32, Member)};
  gpusim::DeviceParams Planned = gpusim::DeviceParams::gtx780();
  Planned.AsyncTimeline = false;
  gpusim::DeviceParams Runtime = Planned;
  Runtime.UseMemPlan = false;
  auto RP = gpusim::Device(Planned).runMain(C->P, Args);
  auto RR = gpusim::Device(Runtime).runMain(C->P, Args);
  if (!RP || !RR)
    return;
  printf("%-28s plan %10lld bytes (bound %10lld)   runtime %10lld "
         "bytes   (cycles identical: %s)\n",
         Name, (long long)RP->Cost.PeakDeviceBytes,
         (long long)RP->Cost.PlannedPeakBytes,
         (long long)RR->Cost.PeakDeviceBytes,
         RP->Cost.TotalCycles == RR->Cost.TotalCycles ? "yes" : "NO");
}

} // namespace

int main() {
  printf("Figure 4: counting cluster sizes in K-means (n=65536, k=32)\n\n");
  double A = run(Fig4a, "Fig 4a (sequential loop)");
  double B = run(Fig4b, "Fig 4b (map + reduce, O(nk))");
  double C = run(Fig4c, "Fig 4c (stream_red)");
  if (A < 0 || B < 0 || C < 0)
    return 1;
  printf("\nwithout in-place updates (4b) vs stream_red (4c): %.1fx slower "
         "(paper: 8.3x)\n",
         B / C);
  printf("sequential host loop (4a) vs stream_red (4c):     %.1fx slower\n",
         A / C);
  printf("\nstatic memory plan vs runtime manager (--no-mem-plan):\n");
  comparePeaks(Fig4b, "Fig 4b (map + reduce)");
  comparePeaks(Fig4c, "Fig 4c (stream_red)");
  return 0;
}
