//===- bench_datasets.cpp - Table 2's dataset configurations ----------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Regenerates Table 2: the dataset configuration of every benchmark,
// printing the paper's configuration next to the (scaled) synthetic
// configuration this repository uses on the simulator.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Benchmarks.h"

#include <cstdio>
#include <map>
#include <sstream>

using namespace fut;
using namespace fut::bench;

namespace {

std::string shapeOf(const Value &V) {
  if (V.isScalar())
    return V.getScalar().str();
  std::ostringstream OS;
  for (size_t I = 0; I < V.shape().size(); ++I)
    OS << (I ? "x" : "") << V.shape()[I];
  OS << " " << scalarKindName(V.elemKind());
  return OS.str();
}

} // namespace

int main() {
  // Paper Table 2 (verbatim), keyed by benchmark.
  std::map<std::string, const char *> Paper = {
      {"backprop", "input layer size 2^20"},
      {"cfd", "fvcorr.domn.193K"},
      {"hotspot", "1024x1024; 360 iterations"},
      {"kmeans", "kdd_cup"},
      {"lavamd", "boxes1d=10"},
      {"myocyte", "workload=65536, xmax=3"},
      {"nn", "default Rodinia dataset x20"},
      {"pathfinder", "array of size 10^5"},
      {"srad", "502x458; 100 iterations"},
      {"locvolcalib", "large dataset"},
      {"optionpricing", "large dataset"},
      {"mriq", "large dataset"},
      {"crystal", "size 2000, degree 50"},
      {"fluid", "3000x3000; 20 iterations"},
      {"mandelbrot", "4000x4000; 255 limit"},
      {"nbody", "N = 10^5"},
  };

  printf("Table 2: benchmark dataset configurations\n");
  printf("(paper datasets, and the scaled synthetic datasets used on the "
         "simulator)\n\n");
  printf("%-14s | %-34s | %s\n", "benchmark", "paper dataset",
         "simulator dataset (argument shapes)");
  for (const BenchmarkDef &B : allBenchmarks()) {
    std::vector<Value> Inputs = B.MakeInputs();
    std::string Shapes;
    for (size_t I = 0; I < Inputs.size(); ++I)
      Shapes += (I ? ", " : "") + shapeOf(Inputs[I]);
    printf("%-14s | %-34s | %s\n", B.Name.c_str(), Paper[B.Name],
           Shapes.c_str());
  }
  return 0;
}
