//===- bench_serve.cpp - Serving throughput and resilience (E14) ----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E14: the economics of compile-once/serve-many.  Two legs:
///
///  * throughput — a repeated-program workload (four programs, three
///    argument sizes, 120 requests) through one server; reports the
///    cache hit rate (misses are exactly the distinct programs), the
///    sustained request rate over the simulated timeline, and the
///    hit-vs-miss service latency gap the artifact cache buys;
///
///  * soak — the same workload with a 40% injected launch-failure rate
///    and 10% corruption per request; every request must still complete
///    (retried, quarantine-recompiled, or degraded to the interpreter),
///    which is the serving layer's robustness headline.
///
/// Both legs record their counters into BENCH_trace.json (consumed by
/// the CI serve leg and EXPERIMENTS.md E14).
///
//===----------------------------------------------------------------------===//

#include "bench_suite/BenchTrace.h"
#include "serve/Serve.h"

#include <cstdio>
#include <vector>

using namespace fut;

namespace {

/// Simulated device clock for converting cycles to wall-time-equivalent
/// rates: ~1 GHz, the order of the GTX 780's boost clock.
constexpr double kCyclesPerSecond = 1e9;

struct Program {
  const char *Name;
  const char *Source;
};

const Program kPrograms[] = {
    {"sumsq",
     "fun main (n: i32): i32 =\n"
     "  reduce (+) 0 (map (\\(i: i32): i32 -> i * i) (iota n))\n"},
    {"polyfold",
     "fun main (n: i32): i32 =\n"
     "  reduce (+) 0 (map (\\(i: i32): i32 -> (i * 3 + 1) * (i % 7))\n"
     "                    (iota n))\n"},
    {"scanlast",
     "fun main (n: i32): i32 =\n"
     "  let s = scan (+) 0 (iota n)\n"
     "  in s[n - 1]\n"},
    {"maskedsum",
     "fun main (n: i32): i32 =\n"
     "  reduce (+) 0 (map (\\(i: i32): i32 -> if i % 3 == 0 then i else 0)\n"
     "                    (iota n))\n"},
};
constexpr int kNumPrograms =
    static_cast<int>(sizeof(kPrograms) / sizeof(kPrograms[0]));
constexpr int kRequests = 120;
constexpr double kArrivalGap = 20000;

struct LegResult {
  serve::ServerStats Stats;
  int Ok = 0, Failed = 0;
  double HitServiceAvg = 0, MissServiceAvg = 0;
  double Makespan = 0;
};

LegResult runLeg(double FaultRate, double CorruptRate) {
  serve::Server S;
  const int32_t Sizes[] = {256, 512, 1024};
  for (int I = 0; I < kRequests; ++I) {
    serve::ServeRequest R;
    R.Source = kPrograms[I % kNumPrograms].Source;
    R.Args.push_back(Value::scalar(
        PrimValue::makeI32(Sizes[(I / kNumPrograms) % 3])));
    R.ArrivalCycle = I * kArrivalGap;
    R.Limits.LaunchFailRate = FaultRate;
    R.Limits.CorruptRate = CorruptRate;
    R.Limits.FaultSeed = 0x5eedULL + I;
    S.submit(std::move(R));
  }

  LegResult L;
  double HitSum = 0, MissSum = 0;
  int Hits = 0, Misses = 0;
  for (const serve::ServeResponse &R : S.drain()) {
    if (R.Ok)
      ++L.Ok;
    else
      ++L.Failed;
    if (R.CacheHit) {
      HitSum += R.serviceCycles();
      ++Hits;
    } else {
      MissSum += R.serviceCycles();
      ++Misses;
    }
  }
  L.Stats = S.stats();
  L.HitServiceAvg = Hits ? HitSum / Hits : 0;
  L.MissServiceAvg = Misses ? MissSum / Misses : 0;
  L.Makespan = L.Stats.LastCompletionCycle;
  return L;
}

} // namespace

int main() {
  bench::BenchTraceWriter Trace;

  printf("E14: compile-once/serve-many (%d requests, %d programs x 3 "
         "sizes)\n\n",
         kRequests, kNumPrograms);

  // Leg 1: fault-free throughput.
  Trace.beginRun();
  LegResult T = runLeg(0, 0);
  double HitRate = T.Stats.cacheHitRate();
  double ReqPerSec =
      T.Makespan > 0 ? kRequests / (T.Makespan / kCyclesPerSecond) : 0;
  printf("throughput leg:\n");
  printf("  completed            %d/%d\n", T.Ok, kRequests);
  printf("  cache                %lld hits / %lld misses (%.1f%% hit "
         "rate)\n",
         static_cast<long long>(T.Stats.CacheHits),
         static_cast<long long>(T.Stats.CacheMisses), 100 * HitRate);
  printf("  sustained rate       %.0f requests/sec (simulated, %.2fM "
         "cycles makespan)\n",
         ReqPerSec, T.Makespan / 1e6);
  printf("  service cycles       hit avg %.0f vs miss avg %.0f (%.1fx "
         "cheaper)\n",
         T.HitServiceAvg, T.MissServiceAvg,
         T.HitServiceAvg > 0 ? T.MissServiceAvg / T.HitServiceAvg : 0);
  printf("  admission            %lld solo + %lld packed, peak %lld "
         "tenants, peak reserved %lld bytes\n\n",
         static_cast<long long>(T.Stats.SoloRuns),
         static_cast<long long>(T.Stats.PackedRuns),
         static_cast<long long>(T.Stats.PeakResidentTenants),
         static_cast<long long>(T.Stats.PeakReservedBytes));
  Trace.record("serve_throughput", "gtx780",
               {{"requests", kRequests},
                {"completed", T.Ok},
                {"cache_hit_rate", HitRate},
                {"requests_per_sec", ReqPerSec},
                {"makespan_cycles", T.Makespan},
                {"hit_service_cycles", T.HitServiceAvg},
                {"miss_service_cycles", T.MissServiceAvg},
                {"peak_reserved_bytes",
                 static_cast<double>(T.Stats.PeakReservedBytes)}});

  // Leg 2: the 40% fault soak.
  Trace.beginRun();
  LegResult F = runLeg(0.4, 0.1);
  printf("soak leg (40%% launch faults, 10%% corruption):\n");
  printf("  completed            %d/%d (%d device failures absorbed)\n",
         F.Ok, kRequests, static_cast<int>(F.Stats.DeviceFailures));
  printf("  recovery             %lld quarantined, %lld recompiles, %lld "
         "interpreter fallbacks\n",
         static_cast<long long>(F.Stats.Quarantined),
         static_cast<long long>(F.Stats.Recompiles),
         static_cast<long long>(F.Stats.Fallbacks));
  printf("  cache                %.1f%% hit rate (fault recovery does not "
         "evict good artifacts)\n",
         100 * F.Stats.cacheHitRate());
  Trace.record("serve_soak", "gtx780",
               {{"requests", kRequests},
                {"completed", F.Ok},
                {"fault_rate", 0.4},
                {"device_failures",
                 static_cast<double>(F.Stats.DeviceFailures)},
                {"quarantined", static_cast<double>(F.Stats.Quarantined)},
                {"fallbacks", static_cast<double>(F.Stats.Fallbacks)},
                {"cache_hit_rate", F.Stats.cacheHitRate()}});

  bool Pass = T.Ok == kRequests && F.Ok == kRequests && HitRate >= 0.9;
  printf("\n%s: throughput %d/%d, soak %d/%d, hit rate %.1f%% (>= 90%% "
         "required)\n",
         Pass ? "PASS" : "FAIL", T.Ok, kRequests, F.Ok, kRequests,
         100 * HitRate);

  if (!Trace.write("BENCH_trace.json"))
    fprintf(stderr, "warning: could not write BENCH_trace.json\n");
  else
    printf("serve trace counters written to BENCH_trace.json\n");
  return Pass ? 0 : 1;
}
